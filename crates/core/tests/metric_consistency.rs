//! Consistency properties of the §3 introspection metrics on seeded random
//! programs: internal relationships that must hold by definition, checked
//! against the analysis results they were derived from.

use rudoop_core::policy::Insensitive;
use rudoop_core::solver::{analyze, SolverConfig};
use rudoop_core::IntrospectionMetrics;
use rudoop_ir::arbitrary::{generate, ProgramShape};
use rudoop_ir::ClassHierarchy;

const CASES: u64 = 48;

#[test]
fn metric_relationships_hold() {
    for seed in 0..CASES {
        let p = generate(&ProgramShape::default(), seed);
        let h = ClassHierarchy::new(&p);
        let r = analyze(&p, &h, &Insensitive, &SolverConfig::default());
        let m = IntrospectionMetrics::compute(&p, &r);

        // Max-variant ≤ total-variant, per method and per object.
        for mid in p.methods.ids() {
            assert!(
                m.method_max_var_pts[mid] <= m.method_total_pts[mid],
                "seed {seed}"
            );
        }
        for aid in p.allocs.ids() {
            assert!(
                m.obj_max_field_pts[aid] <= m.obj_total_field_pts[aid],
                "seed {seed}"
            );
        }

        // Sum of pointed-by-vars over all objects equals the total volume
        // over all methods (both count (var, heap) pairs).
        let total_pointed: u64 = p
            .allocs
            .ids()
            .map(|a| u64::from(m.pointed_by_vars[a]))
            .sum();
        let total_volume: u64 = p
            .methods
            .ids()
            .map(|mm| u64::from(m.method_total_pts[mm]))
            .sum();
        assert_eq!(total_pointed, total_volume, "seed {seed}");

        // In-flow of a site is bounded by the points-to sizes of its args.
        for (iid, invoke) in p.invokes.iter() {
            let bound: u64 = invoke
                .args
                .iter()
                .map(|&a| r.points_to(a).len() as u64)
                .sum();
            assert!(u64::from(m.in_flow[iid]) <= bound, "seed {seed}");
        }

        // Metric #4 is the max of metric #3 over objects the method's vars
        // reach, so it is bounded by the global max of metric #3.
        let global_max_field = p
            .allocs
            .ids()
            .map(|a| m.obj_max_field_pts[a])
            .max()
            .unwrap_or(0);
        for mid in p.methods.ids() {
            assert!(
                m.method_max_var_field_pts[mid] <= global_max_field,
                "seed {seed}"
            );
        }

        // Pointed-by-objs sums to the total field-points-to volume.
        let total_by_objs: u64 = p
            .allocs
            .ids()
            .map(|a| u64::from(m.pointed_by_objs[a]))
            .sum();
        let total_field: u64 = p
            .allocs
            .ids()
            .map(|a| u64::from(m.obj_total_field_pts[a]))
            .sum();
        assert_eq!(total_by_objs, total_field, "seed {seed}");
    }
}
