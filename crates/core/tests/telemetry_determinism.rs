//! Determinism contract of the telemetry layer.
//!
//! Telemetry keeps three strictly separated streams (see
//! `rudoop_core::telemetry`):
//!
//! - the **counter stream** holds only values derived from final analysis
//!   results, so its text rendering must be *byte-identical* across thread
//!   counts and across repeated runs;
//! - the **metric stream** holds topology-dependent values (per-epoch work,
//!   routed messages, worklist drains), so it must be byte-identical across
//!   repeated runs *at a fixed thread count* but may differ between thread
//!   counts;
//! - spans, instants, and samples carry wall-clock timestamps and are never
//!   compared.
//!
//! On top of that, telemetry must be *observationally inert*: a run with a
//! recorder attached produces byte-identical results (canonical stats,
//! projections, outcome, exit codes) to a run without one, at every thread
//! count.

use std::sync::Arc;

use rudoop_core::driver::{analyze_flavor, Flavor};
use rudoop_core::solver::{Budget, SolverConfig};
use rudoop_core::supervisor::{supervise, LadderSpec, SupervisorConfig};
use rudoop_core::{Parallelism, Telemetry, TelemetryHandle};
use rudoop_ir::{ClassHierarchy, Program};
use rudoop_workloads::dacapo;

const THREADS: [usize; 4] = [1, 2, 4, 8];

const FLAVORS: [(Flavor, &str); 4] = [
    (Flavor::Insensitive, "insens"),
    (Flavor::OBJ2H, "2objH"),
    (Flavor::CALL2H, "2callH"),
    (Flavor::TYPE2H, "2typeH"),
];

fn workloads() -> Vec<(String, Program)> {
    [dacapo::antlr(), dacapo::lusearch(), dacapo::pmd()]
        .into_iter()
        .map(|spec| (spec.name.clone(), spec.build()))
        .collect()
}

fn traced_config(threads: usize, tele: &TelemetryHandle) -> SolverConfig {
    SolverConfig {
        budget: Budget::unlimited(),
        parallelism: Parallelism::threads(threads),
        telemetry: tele.clone(),
        ..SolverConfig::default()
    }
}

/// Runs one flavor and returns `(counter text, metric text)`.
fn run_traced(
    program: &Program,
    hierarchy: &ClassHierarchy,
    flavor: Flavor,
    threads: usize,
) -> (String, String) {
    let tele: TelemetryHandle = Some(Arc::new(Telemetry::new()));
    let result = analyze_flavor(program, hierarchy, flavor, &traced_config(threads, &tele));
    assert!(result.outcome.is_complete());
    let t = tele.as_deref().unwrap();
    (t.counter_stream_text(), t.metric_stream_text())
}

/// Counter streams are byte-identical across threads 1/2/4/8 and across
/// repeated runs, on three workloads × all four flavors. Metric streams
/// are byte-identical across repeated runs at each fixed thread count.
#[test]
fn counter_streams_are_thread_and_run_invariant() {
    for (name, program) in workloads() {
        let hierarchy = ClassHierarchy::new(&program);
        for (flavor, label) in FLAVORS {
            let mut reference: Option<String> = None;
            for threads in THREADS {
                let (counters, metrics) = run_traced(&program, &hierarchy, flavor, threads);
                assert!(
                    !counters.is_empty(),
                    "{name}/{label}/t{threads}: no counters recorded"
                );
                match &reference {
                    None => reference = Some(counters),
                    Some(r) => assert_eq!(
                        r, &counters,
                        "{name}/{label}/t{threads}: counter stream diverged from t1"
                    ),
                }
                // Repeat run: both streams must reproduce exactly.
                let (again_c, again_m) = run_traced(&program, &hierarchy, flavor, threads);
                assert_eq!(
                    reference.as_deref(),
                    Some(again_c.as_str()),
                    "{name}/{label}/t{threads}: counters differ between repeated runs"
                );
                assert_eq!(
                    metrics, again_m,
                    "{name}/{label}/t{threads}: metrics differ between repeated runs"
                );
            }
        }
    }
}

/// Attaching a recorder never changes the analysis: canonical stats,
/// projections, outcome — byte-identical on vs. off, at every thread count.
#[test]
fn telemetry_is_observationally_inert() {
    for (name, program) in workloads() {
        let hierarchy = ClassHierarchy::new(&program);
        for (flavor, label) in FLAVORS {
            for threads in THREADS {
                let plain =
                    analyze_flavor(&program, &hierarchy, flavor, &traced_config(threads, &None));
                let tele: TelemetryHandle = Some(Arc::new(Telemetry::new()));
                let traced =
                    analyze_flavor(&program, &hierarchy, flavor, &traced_config(threads, &tele));
                let tag = format!("{name}/{label}/t{threads}");
                assert_eq!(plain.outcome, traced.outcome, "{tag}: outcome");
                assert_eq!(
                    plain.stats.canonical(),
                    traced.stats.canonical(),
                    "{tag}: canonical stats"
                );
                assert_eq!(plain.var_pts, traced.var_pts, "{tag}: var projections");
                assert_eq!(
                    plain.field_pts, traced.field_pts,
                    "{tag}: field projections"
                );
                assert_eq!(plain.call_targets, traced.call_targets, "{tag}: call graph");
            }
        }
    }
}

/// A budgeted ladder run emits exactly one `rung` span per attempted rung —
/// including rungs skipped by the exhausted-first-pass proxy, which still
/// count as attempts.
#[test]
fn ladder_emits_one_rung_span_per_attempt() {
    let program = dacapo::hsqldb().build();
    let hierarchy = ClassHierarchy::new(&program);
    let tele: TelemetryHandle = Some(Arc::new(Telemetry::new()));
    let cfg = SupervisorConfig {
        ladder: LadderSpec::parse("2objH,introB:2objH,insens").unwrap(),
        budget: Budget::derivations(2_000_000),
        solver: SolverConfig {
            telemetry: tele.clone(),
            ..SolverConfig::default()
        },
        watchdog: false,
    };
    let run = supervise(&program, &hierarchy, &cfg);
    assert!(run.attempts.len() > 1, "ladder must actually degrade");
    let t = tele.as_deref().unwrap();
    let rung_spans = t.spans().iter().filter(|s| s.name == "rung").count();
    assert_eq!(
        rung_spans,
        run.attempts.len(),
        "one rung span per attempted rung"
    );
    // The supervisor's own framing: one supervise span, and a degradation
    // instant for every non-complete attempt.
    let spans = t.spans();
    assert_eq!(spans.iter().filter(|s| s.name == "supervise").count(), 1);
    let degraded = t
        .instants()
        .iter()
        .filter(|i| i.name == "rung-degraded")
        .count();
    let failed = run
        .attempts
        .iter()
        .filter(|a| a.exhaustion.is_some())
        .count();
    assert_eq!(degraded, failed, "one degradation instant per failed rung");
}

/// The Chrome-trace sink stays valid (balanced, monotone, finite) for a
/// parallel multi-epoch run, and carries the per-shard drain spans.
#[test]
fn parallel_run_trace_validates() {
    let program = dacapo::pmd().build();
    let hierarchy = ClassHierarchy::new(&program);
    let tele: TelemetryHandle = Some(Arc::new(Telemetry::new()));
    let result = analyze_flavor(
        &program,
        &hierarchy,
        Flavor::OBJ2H,
        &traced_config(4, &tele),
    );
    assert!(result.outcome.is_complete());
    let t = tele.as_deref().unwrap();
    let check = rudoop_core::validate_chrome_trace(&t.chrome_trace()).expect("trace validates");
    assert!(check.span_names.contains("solve") || check.span_names.contains("parallel-solve"));
    assert!(check.span_names.contains("epoch"), "epoch spans present");
    assert!(check.span_names.contains("drain"), "per-shard drain spans");
    assert!(check.samples > 0, "counter tracks present");
}
