//! Determinism contract of the telemetry layer.
//!
//! Telemetry keeps three strictly separated streams (see
//! `rudoop_core::telemetry`):
//!
//! - the **counter stream** holds only values derived from final analysis
//!   results, so its text rendering must be *byte-identical* across thread
//!   counts and across repeated runs;
//! - the **metric stream** holds topology-dependent values (per-epoch work,
//!   routed messages, worklist drains), so it must be byte-identical across
//!   repeated runs *at a fixed thread count* but may differ between thread
//!   counts;
//! - spans, instants, and samples carry wall-clock timestamps and are never
//!   compared.
//!
//! On top of that, telemetry must be *observationally inert*: a run with a
//! recorder attached produces byte-identical results (canonical stats,
//! projections, outcome, exit codes) to a run without one, at every thread
//! count.

use std::sync::Arc;

use rudoop_core::driver::{analyze_flavor, Flavor};
use rudoop_core::solver::{Budget, SolverConfig};
use rudoop_core::supervisor::{supervise, LadderSpec, SupervisorConfig};
use rudoop_core::{Parallelism, Telemetry, TelemetryHandle};
use rudoop_ir::{ClassHierarchy, Program};
use rudoop_workloads::dacapo;

const THREADS: [usize; 4] = [1, 2, 4, 8];

const FLAVORS: [(Flavor, &str); 4] = [
    (Flavor::Insensitive, "insens"),
    (Flavor::OBJ2H, "2objH"),
    (Flavor::CALL2H, "2callH"),
    (Flavor::TYPE2H, "2typeH"),
];

fn workloads() -> Vec<(String, Program)> {
    [dacapo::antlr(), dacapo::lusearch(), dacapo::pmd()]
        .into_iter()
        .map(|spec| (spec.name.clone(), spec.build()))
        .collect()
}

fn traced_config(threads: usize, tele: &TelemetryHandle) -> SolverConfig {
    SolverConfig {
        budget: Budget::unlimited(),
        parallelism: Parallelism::threads(threads),
        telemetry: tele.clone(),
        ..SolverConfig::default()
    }
}

/// Runs one flavor and returns `(counter text, metric text)`.
fn run_traced(
    program: &Program,
    hierarchy: &ClassHierarchy,
    flavor: Flavor,
    threads: usize,
) -> (String, String) {
    let tele: TelemetryHandle = Some(Arc::new(Telemetry::new()));
    let result = analyze_flavor(program, hierarchy, flavor, &traced_config(threads, &tele));
    assert!(result.outcome.is_complete());
    let t = tele.as_deref().unwrap();
    (t.counter_stream_text(), t.metric_stream_text())
}

/// Counter streams are byte-identical across threads 1/2/4/8 and across
/// repeated runs, on three workloads × all four flavors. Metric streams
/// are byte-identical across repeated runs at each fixed thread count.
#[test]
fn counter_streams_are_thread_and_run_invariant() {
    for (name, program) in workloads() {
        let hierarchy = ClassHierarchy::new(&program);
        for (flavor, label) in FLAVORS {
            let mut reference: Option<String> = None;
            for threads in THREADS {
                let (counters, metrics) = run_traced(&program, &hierarchy, flavor, threads);
                assert!(
                    !counters.is_empty(),
                    "{name}/{label}/t{threads}: no counters recorded"
                );
                match &reference {
                    None => reference = Some(counters),
                    Some(r) => assert_eq!(
                        r, &counters,
                        "{name}/{label}/t{threads}: counter stream diverged from t1"
                    ),
                }
                // Repeat run: both streams must reproduce exactly.
                let (again_c, again_m) = run_traced(&program, &hierarchy, flavor, threads);
                assert_eq!(
                    reference.as_deref(),
                    Some(again_c.as_str()),
                    "{name}/{label}/t{threads}: counters differ between repeated runs"
                );
                assert_eq!(
                    metrics, again_m,
                    "{name}/{label}/t{threads}: metrics differ between repeated runs"
                );
            }
        }
    }
}

/// Attaching a recorder never changes the analysis: canonical stats,
/// projections, outcome — byte-identical on vs. off, at every thread count.
#[test]
fn telemetry_is_observationally_inert() {
    for (name, program) in workloads() {
        let hierarchy = ClassHierarchy::new(&program);
        for (flavor, label) in FLAVORS {
            for threads in THREADS {
                let plain =
                    analyze_flavor(&program, &hierarchy, flavor, &traced_config(threads, &None));
                let tele: TelemetryHandle = Some(Arc::new(Telemetry::new()));
                let traced =
                    analyze_flavor(&program, &hierarchy, flavor, &traced_config(threads, &tele));
                let tag = format!("{name}/{label}/t{threads}");
                assert_eq!(plain.outcome, traced.outcome, "{tag}: outcome");
                assert_eq!(
                    plain.stats.canonical(),
                    traced.stats.canonical(),
                    "{tag}: canonical stats"
                );
                assert_eq!(plain.var_pts, traced.var_pts, "{tag}: var projections");
                assert_eq!(
                    plain.field_pts, traced.field_pts,
                    "{tag}: field projections"
                );
                assert_eq!(plain.call_targets, traced.call_targets, "{tag}: call graph");
            }
        }
    }
}

/// A budgeted ladder run emits exactly one `rung` span per attempted rung —
/// including rungs skipped by the exhausted-first-pass proxy, which still
/// count as attempts.
#[test]
fn ladder_emits_one_rung_span_per_attempt() {
    let program = dacapo::hsqldb().build();
    let hierarchy = ClassHierarchy::new(&program);
    let tele: TelemetryHandle = Some(Arc::new(Telemetry::new()));
    let cfg = SupervisorConfig {
        ladder: LadderSpec::parse("2objH,introB:2objH,insens").unwrap(),
        budget: Budget::derivations(2_000_000),
        solver: SolverConfig {
            telemetry: tele.clone(),
            ..SolverConfig::default()
        },
        watchdog: false,
        warm_first_pass: None,
        warm_summaries: None,
    };
    let run = supervise(&program, &hierarchy, &cfg);
    assert!(run.attempts.len() > 1, "ladder must actually degrade");
    let t = tele.as_deref().unwrap();
    let rung_spans = t.spans().iter().filter(|s| s.name == "rung").count();
    assert_eq!(
        rung_spans,
        run.attempts.len(),
        "one rung span per attempted rung"
    );
    // The supervisor's own framing: one supervise span, and a degradation
    // instant for every non-complete attempt.
    let spans = t.spans();
    assert_eq!(spans.iter().filter(|s| s.name == "supervise").count(), 1);
    let degraded = t
        .instants()
        .iter()
        .filter(|i| i.name == "rung-degraded")
        .count();
    let failed = run
        .attempts
        .iter()
        .filter(|a| a.exhaustion.is_some())
        .count();
    assert_eq!(degraded, failed, "one degradation instant per failed rung");
}

/// The Chrome-trace sink stays valid (balanced, monotone, finite) for a
/// parallel multi-epoch run, and carries the per-shard drain spans.
#[test]
fn parallel_run_trace_validates() {
    let program = dacapo::pmd().build();
    let hierarchy = ClassHierarchy::new(&program);
    let tele: TelemetryHandle = Some(Arc::new(Telemetry::new()));
    let result = analyze_flavor(
        &program,
        &hierarchy,
        Flavor::OBJ2H,
        &traced_config(4, &tele),
    );
    assert!(result.outcome.is_complete());
    let t = tele.as_deref().unwrap();
    let check = rudoop_core::validate_chrome_trace(&t.chrome_trace()).expect("trace validates");
    assert!(check.span_names.contains("solve") || check.span_names.contains("parallel-solve"));
    assert!(check.span_names.contains("epoch"), "epoch spans present");
    assert!(check.span_names.contains("drain"), "per-shard drain spans");
    assert!(check.samples > 0, "counter tracks present");
}

/// The service layer keeps the counter-stream contract: a scripted
/// serial overload scenario — one stalled request occupying the only
/// worker, one request shed and retried — produces a byte-identical
/// counter stream on every run, with the `service.*` counters flushed
/// once at shutdown in fixed order and the client's retry counter pushed
/// from the retry loop.
#[test]
fn service_counter_stream_is_run_invariant() {
    use rudoop_core::service::client::{query_with_retry, RetryPolicy};
    use rudoop_core::service::faults::FaultPlan;
    use rudoop_core::service::protocol::{
        self, QueryRequest, Request, Response, MAX_RESPONSE_FRAME,
    };
    use rudoop_core::service::server::Server;
    use rudoop_core::service::{ServiceConfig, ServiceState};

    fn scripted_run() -> String {
        let tele: TelemetryHandle = Some(Arc::new(Telemetry::new()));
        let config = ServiceConfig {
            workers: 1,
            queue: 0,
            faults: FaultPlan::parse(&["stall-ms=100@req=1".to_owned()]).unwrap(),
            telemetry: tele.clone(),
            ..ServiceConfig::default()
        };
        let program = dacapo::antlr().build();
        let state = Arc::new(ServiceState::new(program, config));
        let server = Server::bind(Arc::clone(&state), "127.0.0.1:0").expect("bind");
        let handle = server.spawn().expect("spawn");
        let addr = handle.addr().to_string();

        let query = Request::Query(QueryRequest {
            kind: "stats".to_owned(),
            ladder: Some("insens".to_owned()),
            ..QueryRequest::default()
        });

        // Occupy the only worker slot (held through the 100ms stall).
        let mut blocker = std::net::TcpStream::connect(&addr).expect("connect");
        protocol::write_frame(&mut blocker, query.render().as_bytes()).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while state.admission().occupancy().0 == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "blocker never admitted"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }

        // Shed exactly once: the retry backs off 300-600ms, far past the
        // stall, so the second attempt is deterministically accepted.
        let policy = RetryPolicy {
            retries: 3,
            base_ms: 600,
            cap_ms: 2_000,
            seed: 11,
        };
        let outcome = query_with_retry(&addr, &query, &policy, &tele).expect("retry succeeds");
        assert_eq!(outcome.attempts, 2, "exactly one shed, one success");

        let payload = protocol::read_frame(&mut blocker, MAX_RESPONSE_FRAME).unwrap();
        assert!(matches!(
            Response::parse(&payload).unwrap(),
            Response::Doc { .. }
        ));
        drop(blocker);
        handle.stop();
        tele.as_deref().unwrap().counter_stream_text()
    }

    let first = scripted_run();
    let again = scripted_run();
    assert_eq!(
        first, again,
        "service counter stream must reproduce byte-identically"
    );
    for line in [
        "service.client_retries=1",
        "service.requests_accepted=2",
        "service.requests_shed=1",
        "service.requests_degraded=0",
        "service.summary_cache_hits=0",
        "service.summary_cache_misses=0",
    ] {
        assert!(
            first.lines().any(|l| l == line),
            "stream is missing {line:?}:\n{first}"
        );
    }
    // The client retry fires mid-run, the service counters flush at
    // shutdown — the stream order pins that discipline.
    let pos = |needle: &str| first.find(needle).unwrap();
    assert!(pos("service.client_retries") < pos("service.requests_accepted"));
    assert!(pos("service.requests_accepted") < pos("service.requests_shed"));
    assert!(pos("service.requests_shed") < pos("service.requests_degraded"));
    assert!(pos("service.requests_degraded") < pos("service.summary_cache_hits"));
    assert!(pos("service.summary_cache_hits") < pos("service.summary_cache_misses"));
}
