//! Supervisor × taint interaction: the degradation contract for the taint
//! client.
//!
//! A completed rung — even one reached by degrading — is a sound points-to
//! abstraction and taint runs on it. An exhausted ladder salvages partial
//! points-to facts for inspection, but taint is *skipped*: a leak list
//! computed from partial facts would silently under-report, which for a
//! security client is the worst possible failure mode.

use rudoop_core::policy::Insensitive;
use rudoop_core::solver::{analyze, Budget, SolverConfig};
use rudoop_core::supervisor::{supervise, LadderSpec, SupervisionVerdict, SupervisorConfig};
use rudoop_core::taint::{analyze_taint, supervised_taint, SupervisedTaint};
use rudoop_ir::{ClassHierarchy, Program, ProgramBuilder, TaintSpec};

/// A hub/fan-out program (each of `receivers` hub contexts replicates the
/// `objs`-sized mixer set under `2objH`) with one direct taint flow in
/// `main`: `t = Kit.source(); Kit.sink(t)`.
fn tainted_hub(receivers: usize, objs: usize) -> (Program, TaintSpec) {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let hub = b.class("Hub", Some(obj));
    let f = b.field(hub, "f");
    let consume = b.method(hub, "consume", &["x"], false);
    {
        let this = b.this(consume);
        let x = b.param(consume, 0);
        let y = b.var(consume, "y");
        b.store(consume, this, f, x);
        b.load(consume, y, this, f);
        b.ret(consume, y);
    }
    let kit = b.class("Kit", Some(obj));
    let source = b.method(kit, "source", &[], true);
    {
        let v = b.var(source, "v");
        b.alloc(source, v, kit);
        b.ret(source, v);
    }
    let sink = b.method(kit, "sink", &["x"], true);
    let main = b.method(obj, "main", &[], true);
    let mixer = b.var(main, "mixer");
    for i in 0..objs {
        let v = b.var(main, &format!("o{i}"));
        b.alloc(main, v, obj);
        b.mov(main, mixer, v);
    }
    for i in 0..receivers {
        let r = b.var(main, &format!("r{i}"));
        b.alloc(main, r, hub);
        b.vcall(main, None, r, "consume", &[mixer]);
    }
    let t = b.var(main, "t");
    b.scall(main, Some(t), source, &[]);
    b.scall(main, None, sink, &[t]);
    b.entry(main);
    let program = b.finish();

    let mut spec = TaintSpec::new();
    spec.add_source(source);
    spec.add_sink(sink, Some(0));
    (program, spec)
}

fn supervisor_config(ladder: &str, budget: Budget) -> SupervisorConfig {
    SupervisorConfig {
        ladder: LadderSpec::parse(ladder).unwrap(),
        budget,
        solver: SolverConfig {
            record_contexts: true,
            ..SolverConfig::default()
        },
        watchdog: false,
        warm_first_pass: None,
        warm_summaries: None,
    }
}

#[test]
fn exhausted_ladder_salvages_facts_but_skips_taint() {
    let (program, spec) = tainted_hub(60, 150);
    let hierarchy = ClassHierarchy::new(&program);
    // A budget no rung can meet: the single 2objH rung exhausts.
    let cfg = supervisor_config("2objH", Budget::derivations(500));
    let run = supervise(&program, &hierarchy, &cfg);

    assert_eq!(run.verdict, SupervisionVerdict::Exhausted);
    assert_eq!(run.exit_code(), 4);
    assert!(run.result.is_none(), "no rung completed");
    let salvaged = run.salvaged.as_ref().expect("partial facts are salvaged");
    assert!(
        salvaged.var_pts.iter().any(|(_, pts)| !pts.is_empty()),
        "salvage must retain some points-to facts"
    );

    // The taint client must refuse the salvaged partial facts: the direct
    // source→sink leak in `main` exists, and a partial run might miss it.
    match supervised_taint(&program, &spec, &run) {
        SupervisedTaint::Skipped { reason } => {
            assert!(reason.contains("exhausted"), "reason: {reason}");
        }
        SupervisedTaint::Analyzed(t) => {
            panic!(
                "taint must not run on an exhausted ladder; got {} leak(s)",
                t.leaks.len()
            )
        }
    }
}

#[test]
fn degraded_ladder_runs_taint_on_the_completed_rung() {
    let (program, spec) = tainted_hub(60, 150);
    let hierarchy = ClassHierarchy::new(&program);
    // 2objH exhausts under this budget; the insensitive rung completes.
    let cfg = supervisor_config("2objH,insens", Budget::derivations(20_000));
    let run = supervise(&program, &hierarchy, &cfg);

    assert_eq!(run.verdict, SupervisionVerdict::Degraded);
    assert_eq!(run.exit_code(), 3);
    let taint = match supervised_taint(&program, &spec, &run) {
        SupervisedTaint::Analyzed(t) => t,
        SupervisedTaint::Skipped { reason } => panic!("skipped on a completed rung: {reason}"),
    };
    assert_eq!(taint.analysis, "insens");

    // The degraded rung is complete, so its leak list is the full (sound)
    // insensitive answer — identical to running that analysis directly.
    let direct = analyze(
        &program,
        &hierarchy,
        &Insensitive,
        &SolverConfig {
            record_contexts: true,
            ..SolverConfig::default()
        },
    );
    let expected = analyze_taint(&program, &spec, &direct).unwrap();
    assert_eq!(taint.leak_set(), expected.leak_set());
    assert_eq!(taint.leaks.len(), 1, "exactly the direct flow");
}

#[test]
fn complete_ladder_reports_the_leak_with_exit_zero() {
    let (program, spec) = tainted_hub(4, 4);
    let hierarchy = ClassHierarchy::new(&program);
    let cfg = supervisor_config("2objH", Budget::unlimited());
    let run = supervise(&program, &hierarchy, &cfg);

    assert_eq!(run.verdict, SupervisionVerdict::Complete);
    assert_eq!(run.exit_code(), 0);
    let taint = supervised_taint(&program, &spec, &run);
    let taint = taint.as_analyzed().expect("taint runs on a complete rung");
    assert_eq!(taint.leaks.len(), 1);
    assert!(!taint.leaks[0].trace.is_empty());
}
