//! Engine-equivalence suite: the sharded parallel propagation engine must
//! be *observationally identical* to the sequential solver — not "same
//! modulo ordering", but byte-identical canonical stats, projections,
//! exhaustion outcomes, and taint leak sets at every thread count, on the
//! DaCapo-shaped workloads across the context-sensitivity spectrum.
//!
//! This is the contract that makes `--threads` safe to flip on anywhere:
//! reproducibility tests, golden fixtures, and the supervisor's
//! budget-driven degradation ladder all keep working because the parallel
//! engine never produces an answer the sequential solver wouldn't.

use rudoop_core::driver::{analyze_flavor, analyze_introspective, Flavor};
use rudoop_core::heuristics::{HeuristicA, HeuristicB, RefinementHeuristic};
use rudoop_core::solver::{analyze, Budget, PointsToResult, SolverConfig};
use rudoop_core::{analyze_taint, Parallelism};
use rudoop_ir::{ClassHierarchy, Program, TaintSpec};
use rudoop_workloads::dacapo;

fn config(threads: usize, budget: Budget, record: bool) -> SolverConfig {
    SolverConfig {
        budget,
        record_contexts: record,
        parallelism: Parallelism::threads(threads),
        ..SolverConfig::default()
    }
}

/// Every observable except wall-clock time and the per-shard work split
/// must match.
fn assert_same(tag: &str, seq: &PointsToResult, par: &PointsToResult) {
    assert_eq!(seq.analysis, par.analysis, "{tag}: analysis name");
    assert_eq!(seq.outcome, par.outcome, "{tag}: outcome");
    assert_eq!(seq.exhaustion, par.exhaustion, "{tag}: exhaustion cause");
    assert_eq!(
        seq.stats.canonical(),
        par.stats.canonical(),
        "{tag}: canonical stats"
    );
    assert_eq!(seq.var_pts, par.var_pts, "{tag}: var projections");
    assert_eq!(seq.field_pts, par.field_pts, "{tag}: field projections");
    assert_eq!(seq.global_pts, par.global_pts, "{tag}: global projections");
    assert_eq!(seq.call_targets, par.call_targets, "{tag}: call graph");
    assert_eq!(
        seq.reachable_methods, par.reachable_methods,
        "{tag}: reachable methods"
    );
}

fn check_flavor(program: &Program, name: &str, flavor: Flavor, budget: Budget, threads: &[usize]) {
    let hierarchy = ClassHierarchy::new(program);
    let seq = analyze_flavor(
        program,
        &hierarchy,
        flavor,
        &config(1, budget.clone(), false),
    );
    for &t in threads {
        let par = analyze_flavor(
            program,
            &hierarchy,
            flavor,
            &config(t, budget.clone(), false),
        );
        assert_same(&format!("{name}/{flavor:?}/t{t}"), &seq, &par);
    }
}

fn check_introspective(
    program: &Program,
    name: &str,
    heuristic: &dyn RefinementHeuristic,
    budget: Budget,
    threads: &[usize],
) {
    let hierarchy = ClassHierarchy::new(program);
    let seq = analyze_introspective(
        program,
        &hierarchy,
        Flavor::OBJ2H,
        heuristic,
        &config(1, budget.clone(), false),
    );
    for &t in threads {
        let par = analyze_introspective(
            program,
            &hierarchy,
            Flavor::OBJ2H,
            heuristic,
            &config(t, budget.clone(), false),
        );
        let tag = format!("{name}/intro{}/t{t}", heuristic.label());
        assert_same(&tag, &seq.result, &par.result);
        assert_eq!(
            seq.refinement_stats, par.refinement_stats,
            "{tag}: refinement selection"
        );
    }
}

/// The cut-shortcut flavor also completes unbudgeted everywhere (it costs
/// about what the insensitive baseline costs). Its caller-side shortcut
/// loads/stores are registered at coordinator barriers, so this pins the
/// sharded engine's cut handling to the sequential solver's.
#[test]
fn cutshortcut_is_identical_on_all_nine() {
    for spec in dacapo::all_nine() {
        let program = spec.build();
        check_flavor(
            &program,
            &spec.name,
            Flavor::CutShortcut,
            Budget::unlimited(),
            &[2, 4],
        );
    }
}

/// The summaries flavor completes unbudgeted everywhere (it costs about
/// what the insensitive baseline costs). Both layers are exercised at
/// once: the bottom-up table is computed level-parallel when `--threads`
/// is set, and the atoms are instantiated at coordinator barriers in the
/// sharded engine — stats, projections, and exit conditions must still be
/// byte-identical to the fully sequential run at every thread count.
#[test]
fn summaries_are_identical_on_all_nine() {
    for spec in dacapo::all_nine() {
        let program = spec.build();
        check_flavor(
            &program,
            &spec.name,
            Flavor::Summaries,
            Budget::unlimited(),
            &[2, 4, 8],
        );
    }
}

/// The insensitive baseline completes unbudgeted everywhere: pure
/// complete-fixpoint equivalence over all nine workloads.
#[test]
fn insensitive_is_identical_on_all_nine() {
    for spec in dacapo::all_nine() {
        let program = spec.build();
        check_flavor(
            &program,
            &spec.name,
            Flavor::Insensitive,
            Budget::unlimited(),
            &[2, 4],
        );
    }
}

/// `2objH` under a uniform derivation budget: the easy workloads complete,
/// the explosive ones exhaust — and both outcomes (including the exact
/// exhaustion point) must be engine-invariant.
#[test]
fn two_obj_h_is_identical_on_all_nine() {
    for spec in dacapo::all_nine() {
        let program = spec.build();
        check_flavor(
            &program,
            &spec.name,
            Flavor::OBJ2H,
            Budget::derivations(150_000),
            &[2, 4],
        );
    }
}

/// Both introspective heuristics over `2objH` (two sharded passes plus an
/// engine-invariant refinement selection in between).
#[test]
fn introspective_heuristics_are_identical_on_all_nine() {
    for spec in dacapo::all_nine() {
        let program = spec.build();
        check_introspective(
            &program,
            &spec.name,
            &HeuristicA::default(),
            Budget::derivations(150_000),
            &[2],
        );
        check_introspective(
            &program,
            &spec.name,
            &HeuristicB::default(),
            Budget::derivations(150_000),
            &[2],
        );
    }
}

/// High thread counts (more shards than cores) on well-behaved workloads,
/// unbudgeted, across the whole flavor spectrum.
#[test]
fn eight_shards_match_on_well_behaved_workloads() {
    for spec in [dacapo::antlr(), dacapo::pmd()] {
        let program = spec.build();
        for flavor in [Flavor::Insensitive, Flavor::OBJ2H] {
            check_flavor(&program, &spec.name, flavor, Budget::unlimited(), &[8]);
        }
        check_introspective(
            &program,
            &spec.name,
            &HeuristicA::default(),
            Budget::unlimited(),
            &[8],
        );
        check_introspective(
            &program,
            &spec.name,
            &HeuristicB::default(),
            Budget::unlimited(),
            &[8],
        );
    }
}

/// Budget exhaustion must stop at the *same derivation* regardless of the
/// thread count — the sharded engine detects the overrun, discards its
/// attempt, and replays sequentially, so partial facts match exactly.
#[test]
fn budget_exhaustion_point_is_engine_invariant() {
    let program = dacapo::hsqldb().build();
    let hierarchy = ClassHierarchy::new(&program);
    for budget in [60_000u64, 123_456] {
        let seq = analyze_flavor(
            &program,
            &hierarchy,
            Flavor::OBJ2H,
            &config(1, Budget::derivations(budget), false),
        );
        assert!(
            seq.outcome.is_partial(),
            "budget {budget} must bite on hsqldb/2objH"
        );
        for t in [2, 4, 8] {
            let par = analyze_flavor(
                &program,
                &hierarchy,
                Flavor::OBJ2H,
                &config(t, Budget::derivations(budget), false),
            );
            assert_same(&format!("hsqldb/2objH/budget{budget}/t{t}"), &seq, &par);
        }
    }
}

/// Taint leak sets — and the rendered shortest-derivation traces, which
/// depend on context numbering — must be byte-identical across engines.
#[test]
fn taint_leaks_and_traces_are_engine_invariant() {
    for mut spec in [dacapo::antlr(), dacapo::lusearch(), dacapo::pmd()] {
        spec.taint_flows = spec.taint_flows.max(1);
        let program = spec.build();
        let taint_spec =
            TaintSpec::parse(rudoop_workloads::WorkloadSpec::TAINT_SPEC_TEXT, &program)
                .expect("canonical spec resolves");
        let hierarchy = ClassHierarchy::new(&program);
        let seq = analyze_flavor(
            &program,
            &hierarchy,
            Flavor::OBJ2H,
            &config(1, Budget::unlimited(), true),
        );
        let seq_taint = analyze_taint(&program, &taint_spec, &seq).expect("complete run");
        for t in [2, 4, 8] {
            let par = analyze_flavor(
                &program,
                &hierarchy,
                Flavor::OBJ2H,
                &config(t, Budget::unlimited(), true),
            );
            let par_taint = analyze_taint(&program, &taint_spec, &par).expect("complete run");
            let tag = format!("{}/taint/t{t}", spec.name);
            assert_eq!(seq_taint.leak_set(), par_taint.leak_set(), "{tag}: leaks");
            assert_eq!(
                seq_taint.sanitizer_calls, par_taint.sanitizer_calls,
                "{tag}: sanitizer witnesses"
            );
            assert_eq!(
                seq_taint.sanitized_sources, par_taint.sanitized_sources,
                "{tag}: sanitized sources"
            );
            for (ls, lp) in seq_taint.leaks.iter().zip(&par_taint.leaks) {
                assert_eq!(ls.trace, lp.trace, "{tag}: trace");
                assert_eq!(ls.heap_steps, lp.heap_steps, "{tag}: heap steps");
                assert_eq!(
                    ls.merged_heap_step, lp.merged_heap_step,
                    "{tag}: merged step"
                );
            }
        }
    }
}

/// Race witnesses — thread labels, per-thread shortest traces, guard and
/// escape observations — must be byte-identical across engines. This is
/// the renumbering-twin check for the race client: the parallel engine
/// discovers contexts in a different order, so raw context ids differ
/// between runs, and only the canonical content-ranked numbering keeps
/// witness selection (which breaks ties by context rank) stable.
#[test]
fn race_witnesses_and_traces_are_engine_invariant() {
    for mut spec in [dacapo::antlr(), dacapo::pmd()] {
        spec.concurrency = 2;
        let program = spec.build();
        let hierarchy = ClassHierarchy::new(&program);
        let seq = analyze_flavor(
            &program,
            &hierarchy,
            Flavor::OBJ2H,
            &config(1, Budget::unlimited(), true),
        );
        let seq_races = rudoop_core::analyze_races(&program, &seq).expect("complete run");
        assert!(
            !seq_races.races.is_empty(),
            "{}: concurrency battery must race",
            spec.name
        );
        for t in [2, 4, 8] {
            let par = analyze_flavor(
                &program,
                &hierarchy,
                Flavor::OBJ2H,
                &config(t, Budget::unlimited(), true),
            );
            let par_races = rudoop_core::analyze_races(&program, &par).expect("complete run");
            let tag = format!("{}/races/t{t}", spec.name);
            assert_eq!(seq_races.races, par_races.races, "{tag}: witnesses");
            assert_eq!(seq_races.threads, par_races.threads, "{tag}: threads");
            assert_eq!(
                seq_races.access_sites, par_races.access_sites,
                "{tag}: access sites"
            );
            assert_eq!(
                seq_races.guarded_sites, par_races.guarded_sites,
                "{tag}: guarded sites"
            );
            assert_eq!(
                seq_races.suspect_guards, par_races.suspect_guards,
                "{tag}: suspect guards"
            );
            assert_eq!(
                seq_races.dead_regions, par_races.dead_regions,
                "{tag}: dead regions"
            );
            assert_eq!(seq_races.escapes, par_races.escapes, "{tag}: escapes");
        }
    }
}

/// Two runs of the *same* parallel configuration must agree with each
/// other (schedule independence), not just with the sequential engine.
#[test]
fn parallel_runs_are_schedule_independent() {
    let program = dacapo::antlr().build();
    let hierarchy = ClassHierarchy::new(&program);
    let cfg = config(4, Budget::unlimited(), true);
    let a = analyze(
        &program,
        &hierarchy,
        &rudoop_core::ObjectSensitive::new(2, 1),
        &cfg,
    );
    let b = analyze(
        &program,
        &hierarchy,
        &rudoop_core::ObjectSensitive::new(2, 1),
        &cfg,
    );
    assert_same("antlr/2obj/rerun", &a, &b);
    assert_eq!(
        a.shard_work, b.shard_work,
        "even the per-shard work split is deterministic"
    );
}

/// The `scale` workload knob feeds the sharded engine bigger programs out
/// of the same recipes; equivalence must hold there too. The hub patterns
/// grow quadratically with `scale`, so the run is derivation-budgeted:
/// what this checks is that partitioning a 50k-instruction program over
/// four shards reproduces the sequential exhaustion point exactly.
#[test]
fn scaled_workload_matches_across_engines() {
    let mut spec = dacapo::antlr();
    spec.scale = 14;
    let program = spec.build();
    assert!(
        program.instruction_count() >= 50_000,
        "scale 14 antlr should clear 50k instructions, got {}",
        program.instruction_count()
    );
    check_flavor(
        &program,
        "antlr@14",
        Flavor::Insensitive,
        Budget::derivations(150_000),
        &[4],
    );
}
