//! Differential testing of the taint client: the optimized BFS-based
//! analysis in `rudoop-core` must produce a leak set *byte-identical* to
//! the Datalog reference model, on seeded arbitrary programs and on
//! DaCapo-shaped workloads, for the insensitive, `2objH`, and
//! introspective-A/B flavors.
//!
//! The suite also asserts the soundness/precision contract as supersets —
//! not just logs it: a coarser abstraction can only *add* leaks, so
//!
//! ```text
//! leaks(2objH)  ⊆  leaks(introspective 2objH)  ⊆  leaks(insensitive)
//! ```
//!
//! (introspection selectively *coarsens* `2objH`, and the insensitive
//! analysis is the coarsest of the three).

use rudoop_core::driver::{analyze_introspective, Flavor};
use rudoop_core::heuristics::{HeuristicA, HeuristicB, RefinementHeuristic};
use rudoop_core::policy::{ContextPolicy, Insensitive, ObjectSensitive, RefinementSet};
use rudoop_core::solver::{analyze, SolverConfig};
use rudoop_core::taint::analyze_taint;
use rudoop_datalog::run_taint_model;
use rudoop_ir::arbitrary::{generate_with_taint, ProgramShape};
use rudoop_ir::{ClassHierarchy, InvokeId, Program, TaintSpec};
use rudoop_workloads::{dacapo, WorkloadSpec};

type LeakSet = Vec<(InvokeId, InvokeId, u32)>;

fn record_config() -> SolverConfig {
    SolverConfig {
        record_contexts: true,
        ..SolverConfig::default()
    }
}

/// Optimized leak set under a plain (non-introspective) policy.
fn solver_leaks(
    program: &Program,
    hierarchy: &ClassHierarchy,
    spec: &TaintSpec,
    policy: &dyn ContextPolicy,
) -> LeakSet {
    let r = analyze(program, hierarchy, policy, &record_config());
    assert!(r.outcome.is_complete(), "stopped early: {:?}", r.exhaustion);
    analyze_taint(program, spec, &r).unwrap().leak_set()
}

/// Reference leak set for the same plain policy.
fn model_leaks(
    program: &Program,
    hierarchy: &ClassHierarchy,
    spec: &TaintSpec,
    policy: &dyn ContextPolicy,
) -> LeakSet {
    let refine_all = RefinementSet::refine_all(program);
    run_taint_model(program, hierarchy, spec, &Insensitive, policy, &refine_all)
        .unwrap()
        .leaks
}

/// Optimized + reference leak sets for introspective `2objH` under the
/// given heuristic; the model consumes the exact refinement the two-pass
/// driver selected.
fn introspective_leaks(
    program: &Program,
    hierarchy: &ClassHierarchy,
    spec: &TaintSpec,
    heuristic: &dyn RefinementHeuristic,
) -> (LeakSet, LeakSet) {
    let run = analyze_introspective(
        program,
        hierarchy,
        Flavor::OBJ2H,
        heuristic,
        &record_config(),
    );
    assert!(run.result.outcome.is_complete());
    let solver = analyze_taint(program, spec, &run.result)
        .unwrap()
        .leak_set();
    let model = run_taint_model(
        program,
        hierarchy,
        spec,
        &Insensitive,
        &ObjectSensitive::new(2, 1),
        &run.refinement,
    )
    .unwrap()
    .leaks;
    (solver, model)
}

fn assert_subset(finer: &LeakSet, coarser: &LeakSet, what: &str) {
    for leak in finer {
        assert!(
            coarser.binary_search(leak).is_ok(),
            "{what}: leak {leak:?} reported by the finer analysis is missing from the \
             coarser one — soundness violated"
        );
    }
}

/// The full check battery for one `(program, spec)` pair. Returns the
/// insensitive leak count (so callers can assert fixtures actually leak).
fn check_program(name: &str, program: &Program, spec: &TaintSpec) -> usize {
    let hierarchy = ClassHierarchy::new(program);

    let insens_solver = solver_leaks(program, &hierarchy, spec, &Insensitive);
    let insens_model = model_leaks(program, &hierarchy, spec, &Insensitive);
    assert_eq!(insens_solver, insens_model, "{name}: insensitive");

    let obj = ObjectSensitive::new(2, 1);
    let obj_solver = solver_leaks(program, &hierarchy, spec, &obj);
    let obj_model = model_leaks(program, &hierarchy, spec, &obj);
    assert_eq!(obj_solver, obj_model, "{name}: 2objH");

    let (ia_solver, ia_model) =
        introspective_leaks(program, &hierarchy, spec, &HeuristicA::default());
    assert_eq!(ia_solver, ia_model, "{name}: introspective-A");
    let (ib_solver, ib_model) =
        introspective_leaks(program, &hierarchy, spec, &HeuristicB::default());
    assert_eq!(ib_solver, ib_model, "{name}: introspective-B");

    // Soundness chain, asserted in both directions of each inclusion's
    // contrapositive: the finer analysis must never see a leak the coarser
    // one misses.
    assert_subset(&obj_solver, &ia_solver, &format!("{name}: 2objH ⊆ introA"));
    assert_subset(&obj_solver, &ib_solver, &format!("{name}: 2objH ⊆ introB"));
    assert_subset(
        &ia_solver,
        &insens_solver,
        &format!("{name}: introA ⊆ insens"),
    );
    assert_subset(
        &ib_solver,
        &insens_solver,
        &format!("{name}: introB ⊆ insens"),
    );

    insens_solver.len()
}

// ---------------------------------------------------------------- seeded

#[test]
fn seeded_programs_agree_across_flavors() {
    // ≥ 20 seeded arbitrary programs with annotated taint sites.
    let shape = ProgramShape::default();
    let mut leaking = 0usize;
    for seed in 0..24u64 {
        let (program, spec) = generate_with_taint(&shape, seed, 2);
        let n = check_program(&format!("seed {seed}"), &program, &spec);
        if n > 0 {
            leaking += 1;
        }
    }
    // The generator's scripted flows guarantee most seeds actually leak;
    // an all-empty battery would test nothing.
    assert!(leaking >= 20, "only {leaking}/24 seeds leaked");
}

// ------------------------------------------------------------ workloads

/// A DaCapo-shaped spec shrunk to reference-model scale: the Datalog
/// engine evaluates rules tuple-at-a-time, so the full-size specs (built
/// to stress the optimized solver) are out of reach; the shrunk clones
/// keep every pattern of the original enabled, just smaller, and switch
/// the taint battery on.
fn shrink(mut spec: WorkloadSpec) -> WorkloadSpec {
    fn cap(v: &mut usize, at: usize) {
        *v = (*v).min(at);
    }
    cap(&mut spec.pool_values, 8);
    cap(&mut spec.pool_readers, 6);
    cap(&mut spec.wrapper_classes, 2);
    cap(&mut spec.creator_classes, 2);
    cap(&mut spec.creator_instances, 3);
    cap(&mut spec.allocator_classes, 2);
    cap(&mut spec.wrapper_sites_per_class, 2);
    cap(&mut spec.process_steps, 2);
    cap(&mut spec.deep_pool_values, 6);
    cap(&mut spec.deep_creator_classes, 2);
    cap(&mut spec.deep_allocator_classes, 2);
    cap(&mut spec.deep_instances, 2);
    cap(&mut spec.deep_sites_per_class, 2);
    cap(&mut spec.deep_steps, 2);
    cap(&mut spec.util_consumers, 3);
    cap(&mut spec.util_dists, 2);
    cap(&mut spec.util_chain, 2);
    cap(&mut spec.util_moves, 2);
    cap(&mut spec.medium_pool, 6);
    cap(&mut spec.probes_clean, 2);
    cap(&mut spec.probes_type_friendly, 2);
    cap(&mut spec.probes_medium, 2);
    cap(&mut spec.listeners, 2);
    cap(&mut spec.visitor_nodes, 2);
    cap(&mut spec.visitor_kinds, 2);
    cap(&mut spec.stream_depth, 2);
    cap(&mut spec.app_classes, 2);
    cap(&mut spec.app_casts, 2);
    spec.taint_flows = 1;
    spec
}

#[test]
fn dacapo_workloads_agree_across_flavors() {
    for base in dacapo::all_nine() {
        let spec = shrink(base);
        let program = spec.build();
        let taint = spec.taint_spec(&program);
        let leaks = check_program(&spec.name, &program, &taint);
        // Every workload carries the taint battery: the direct leak and
        // the alias bypass must be found even by the most precise flavor's
        // superset (the insensitive count is what we have in hand here).
        assert!(leaks >= 2, "{}: expected ≥ 2 leaks, got {leaks}", spec.name);
    }
}

#[test]
fn context_merge_probe_separates_flavors() {
    // On the taint battery, the insensitive analysis must report strictly
    // more leaks than 2objH (the context-merge probe is a false positive
    // of merging), demonstrating the precision half of the contract.
    let spec = shrink(dacapo::antlr());
    let program = spec.build();
    let taint = spec.taint_spec(&program);
    let hierarchy = ClassHierarchy::new(&program);
    let insens = solver_leaks(&program, &hierarchy, &taint, &Insensitive);
    let obj = solver_leaks(&program, &hierarchy, &taint, &ObjectSensitive::new(2, 1));
    assert!(
        obj.len() < insens.len(),
        "2objH ({}) should be strictly more precise than insensitive ({})",
        obj.len(),
        insens.len()
    );
}
