//! Property-style differential testing: on seeded randomly generated
//! programs the optimized solver and the executable Datalog model of the
//! paper's Figures 2–3 must agree exactly — for the insensitive analysis, a
//! deep object-sensitive analysis, and introspective mixes with random
//! exclusion sets.

use rudoop_core::context::ContextElem;
use rudoop_core::policy::{
    ContextPolicy, Insensitive, Introspective, ObjectSensitive, RefinementSet,
};
use rudoop_core::solver::{analyze, SolverConfig};
use rudoop_datalog::run_model;
use rudoop_ir::arbitrary::{generate, ProgramShape};
use rudoop_ir::rng::SplitMix64;
use rudoop_ir::{ClassHierarchy, Idx, Program};

const CASES: u64 = 32;

type Tuples = Vec<(u32, Vec<ContextElem>, u32, Vec<ContextElem>)>;

fn small_shape() -> ProgramShape {
    // The Datalog model is a reference implementation, not a fast one;
    // keep the programs small so each case finishes in milliseconds.
    ProgramShape {
        max_classes: 4,
        max_fields: 2,
        max_globals: 2,
        max_methods: 4,
        max_body: 7,
    }
}

fn solver_tuples(p: &Program, policy: &dyn ContextPolicy) -> (Tuples, Tuples) {
    let h = ClassHierarchy::new(p);
    let config = SolverConfig {
        record_contexts: true,
        ..SolverConfig::default()
    };
    let r = analyze(p, &h, policy, &config);
    assert!(r.outcome.is_complete(), "stopped early: {:?}", r.exhaustion);
    let dump = r.cs_dump.unwrap_or_default();
    let t = &r.tables;
    let mut vpt: Tuples = dump
        .var_points_to
        .iter()
        .map(|&(v, c, hp, hc)| {
            (
                v.0,
                t.ctx_elems(c).to_vec(),
                hp.0,
                t.hctx_elems(hc).to_vec(),
            )
        })
        .collect();
    vpt.sort();
    vpt.dedup();
    let mut cg: Tuples = dump
        .call_graph
        .iter()
        .map(|&(i, c1, m, c2)| (i.0, t.ctx_elems(c1).to_vec(), m.0, t.ctx_elems(c2).to_vec()))
        .collect();
    cg.sort();
    cg.dedup();
    (vpt, cg)
}

fn model_tuples(
    p: &Program,
    refined: &dyn ContextPolicy,
    refinement: &RefinementSet,
) -> (Tuples, Tuples) {
    let h = ClassHierarchy::new(p);
    let m = run_model(p, &h, &Insensitive, refined, refinement).unwrap();
    let t = &m.tables;
    let mut vpt: Tuples = m
        .var_points_to
        .iter()
        .map(|&(v, c, hp, hc)| {
            (
                v.0,
                t.ctx_elems(c).to_vec(),
                hp.0,
                t.hctx_elems(hc).to_vec(),
            )
        })
        .collect();
    vpt.sort();
    vpt.dedup();
    let mut cg: Tuples = m
        .call_graph
        .iter()
        .map(|&(i, c1, mm, c2)| {
            (
                i.0,
                t.ctx_elems(c1).to_vec(),
                mm.0,
                t.ctx_elems(c2).to_vec(),
            )
        })
        .collect();
    cg.sort();
    cg.dedup();
    (vpt, cg)
}

#[test]
fn solver_equals_model_insensitive() {
    for seed in 0..CASES {
        let p = generate(&small_shape(), seed);
        let refine_all = RefinementSet::refine_all(&p);
        let solver = solver_tuples(&p, &Insensitive);
        let model = model_tuples(&p, &Insensitive, &refine_all);
        assert_eq!(solver, model, "seed {seed}");
    }
}

#[test]
fn solver_equals_model_2objh() {
    for seed in 0..CASES {
        let p = generate(&small_shape(), seed);
        let refine_all = RefinementSet::refine_all(&p);
        let policy = ObjectSensitive::new(2, 1);
        let solver = solver_tuples(&p, &policy);
        let model = model_tuples(&p, &policy, &refine_all);
        assert_eq!(solver, model, "seed {seed}");
    }
}

#[test]
fn solver_equals_model_random_introspection() {
    for seed in 0..CASES {
        let p = generate(&small_shape(), seed);
        // Independent mask stream so program shape and exclusion choice
        // vary independently of each other.
        let mut masks = SplitMix64::new(seed ^ 0xdead_beef);
        let (obj_mask, meth_mask) = (masks.next_u64(), masks.next_u64());
        let mut refinement = RefinementSet::refine_all(&p);
        for a in p.allocs.ids() {
            if obj_mask & (1 << (a.index() % 64)) != 0 {
                refinement.no_refine_objects.insert(a);
            }
        }
        for m in p.methods.ids() {
            if meth_mask & (1 << (m.index() % 64)) != 0 {
                refinement.no_refine_methods.insert(m);
            }
        }
        let refined = ObjectSensitive::new(2, 1);
        let model = model_tuples(&p, &refined, &refinement);
        let policy = Introspective::new(Insensitive, refined, refinement, "prop");
        let solver = solver_tuples(&p, &policy);
        assert_eq!(solver, model, "seed {seed}");
    }
}
