//! Differential testing: the optimized worklist solver (`rudoop-core`) must
//! agree with the executable Datalog model of the paper's Figures 2–3 on
//! every context flavor, including introspective mixes.
//!
//! Agreement is checked on the full context-sensitive relations, with
//! contexts compared structurally (as element sequences) because the two
//! implementations may intern context ids in different orders.

use rudoop_core::context::ContextElem;
use rudoop_core::policy::{
    CallSiteSensitive, ContextPolicy, Insensitive, Introspective, ObjectSensitive, RefinementSet,
    TypeSensitive,
};
use rudoop_core::solver::{analyze, SolverConfig};
use rudoop_datalog::run_model;
use rudoop_ir::{AllocId, ClassHierarchy, InvokeId, MethodId, Program, ProgramBuilder};

/// Canonical, implementation-independent renderings of the relations.
#[derive(Debug, PartialEq, Eq)]
struct Canonical {
    var_points_to: Vec<(u32, Vec<ContextElem>, u32, Vec<ContextElem>)>,
    call_graph: Vec<(u32, Vec<ContextElem>, u32, Vec<ContextElem>)>,
    reachable: Vec<(u32, Vec<ContextElem>)>,
}

fn canonical_solver(
    program: &Program,
    hierarchy: &ClassHierarchy,
    policy: &dyn ContextPolicy,
) -> Canonical {
    let config = SolverConfig {
        record_contexts: true,
        ..SolverConfig::default()
    };
    let r = analyze(program, hierarchy, policy, &config);
    assert!(r.outcome.is_complete(), "stopped early: {:?}", r.exhaustion);
    let dump = r.cs_dump.unwrap_or_default();
    let t = &r.tables;
    let mut var_points_to: Vec<_> = dump
        .var_points_to
        .iter()
        .map(|&(v, c, h, hc)| (v.0, t.ctx_elems(c).to_vec(), h.0, t.hctx_elems(hc).to_vec()))
        .collect();
    var_points_to.sort();
    var_points_to.dedup();
    let mut call_graph: Vec<_> = dump
        .call_graph
        .iter()
        .map(|&(i, c1, m, c2)| (i.0, t.ctx_elems(c1).to_vec(), m.0, t.ctx_elems(c2).to_vec()))
        .collect();
    call_graph.sort();
    call_graph.dedup();
    let mut reachable: Vec<_> = dump
        .reachable
        .iter()
        .map(|&(m, c)| (m.0, t.ctx_elems(c).to_vec()))
        .collect();
    reachable.sort();
    reachable.dedup();
    Canonical {
        var_points_to,
        call_graph,
        reachable,
    }
}

fn canonical_model(
    program: &Program,
    hierarchy: &ClassHierarchy,
    default: &dyn ContextPolicy,
    refined: &dyn ContextPolicy,
    refinement: &RefinementSet,
) -> Canonical {
    let m = run_model(program, hierarchy, default, refined, refinement).unwrap();
    let t = &m.tables;
    let mut var_points_to: Vec<_> = m
        .var_points_to
        .iter()
        .map(|&(v, c, h, hc)| (v.0, t.ctx_elems(c).to_vec(), h.0, t.hctx_elems(hc).to_vec()))
        .collect();
    var_points_to.sort();
    var_points_to.dedup();
    let mut call_graph: Vec<_> = m
        .call_graph
        .iter()
        .map(|&(i, c1, mm, c2)| {
            (
                i.0,
                t.ctx_elems(c1).to_vec(),
                mm.0,
                t.ctx_elems(c2).to_vec(),
            )
        })
        .collect();
    call_graph.sort();
    call_graph.dedup();
    let mut reachable: Vec<_> = m
        .reachable
        .iter()
        .map(|&(mm, c)| (mm.0, t.ctx_elems(c).to_vec()))
        .collect();
    reachable.sort();
    reachable.dedup();
    Canonical {
        var_points_to,
        call_graph,
        reachable,
    }
}

/// Checks solver ≡ model for a full (non-introspective) analysis.
fn check_flavor(program: &Program, policy: &dyn ContextPolicy) {
    let hierarchy = ClassHierarchy::new(program);
    let refine_all = RefinementSet::refine_all(program);
    let solver = canonical_solver(program, &hierarchy, policy);
    let model = canonical_model(program, &hierarchy, &Insensitive, policy, &refine_all);
    assert_eq!(
        solver,
        model,
        "solver and model disagree for policy {}",
        policy.name()
    );
}

/// Checks solver ≡ model for an introspective analysis with the given
/// exclusion sets.
fn check_introspective(
    program: &Program,
    refined: &dyn ContextPolicy,
    exclude_objects: &[AllocId],
    exclude_invokes: &[InvokeId],
    exclude_methods: &[MethodId],
) {
    let hierarchy = ClassHierarchy::new(program);
    let mut refinement = RefinementSet::refine_all(program);
    for &a in exclude_objects {
        refinement.no_refine_objects.insert(a);
    }
    for &i in exclude_invokes {
        refinement.no_refine_invokes.insert(i);
    }
    for &m in exclude_methods {
        refinement.no_refine_methods.insert(m);
    }
    let model = canonical_model(program, &hierarchy, &Insensitive, refined, &refinement);
    // The solver sees the same refinement via an Introspective policy; we
    // need a concrete type, so dispatch on the refined policy's name.
    let solver = match refined.name().as_str() {
        name if name.contains("call") => {
            let p = Introspective::new(Insensitive, CallSiteSensitive::new(2, 1), refinement, "T");
            canonical_solver(program, &hierarchy, &p)
        }
        name if name.contains("obj") => {
            let p = Introspective::new(Insensitive, ObjectSensitive::new(2, 1), refinement, "T");
            canonical_solver(program, &hierarchy, &p)
        }
        _ => {
            let p = Introspective::new(
                Insensitive,
                TypeSensitive::new(2, 1, program),
                refinement,
                "T",
            );
            canonical_solver(program, &hierarchy, &p)
        }
    };
    assert_eq!(
        solver,
        model,
        "introspective disagreement for {}",
        refined.name()
    );
}

// ---------------------------------------------------------------- fixtures

/// Identity functions, two call sites — the call-site-sensitivity litmus.
fn identity_program() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let id_m = b.method(obj, "id", &["x"], true);
    let xp = b.param(id_m, 0);
    b.ret(id_m, xp);
    let main = b.method(obj, "main", &[], true);
    let a = b.var(main, "a");
    let c = b.var(main, "c");
    let r1 = b.var(main, "r1");
    let r2 = b.var(main, "r2");
    b.alloc(main, a, obj);
    b.alloc(main, c, obj);
    b.scall(main, Some(r1), id_m, &[a]);
    b.scall(main, Some(r2), id_m, &[c]);
    b.entry(main);
    b.finish()
}

/// Boxes with set/get through `this` — the object-sensitivity litmus, plus
/// a class hierarchy with overriding and a cast.
fn boxes_program() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let item = b.class("Item", Some(obj));
    let special = b.class("SpecialItem", Some(item));
    let box_c = b.class("Box", Some(obj));
    let f = b.field(box_c, "val");
    let set_m = b.method(box_c, "set", &["v"], false);
    let st = b.this(set_m);
    let sv = b.param(set_m, 0);
    b.store(set_m, st, f, sv);
    let get_m = b.method(box_c, "get", &[], false);
    let gt = b.this(get_m);
    let gr = b.var(get_m, "r");
    b.load(get_m, gr, gt, f);
    b.ret(get_m, gr);
    // Item.describe / SpecialItem.describe override pair.
    let d1 = b.method(item, "describe", &[], false);
    let d1r = b.var(d1, "r");
    b.alloc(d1, d1r, item);
    b.ret(d1, d1r);
    let d2 = b.method(special, "describe", &[], false);
    let d2r = b.var(d2, "r");
    b.alloc(d2, d2r, special);
    b.ret(d2, d2r);

    let main = b.method(obj, "main", &[], true);
    let b1 = b.var(main, "b1");
    let b2 = b.var(main, "b2");
    let i1 = b.var(main, "i1");
    let i2 = b.var(main, "i2");
    let o1 = b.var(main, "o1");
    let o2 = b.var(main, "o2");
    let desc = b.var(main, "desc");
    let casted = b.var(main, "casted");
    b.alloc(main, b1, box_c);
    b.alloc(main, b2, box_c);
    b.alloc(main, i1, item);
    b.alloc(main, i2, special);
    b.vcall(main, None, b1, "set", &[i1]);
    b.vcall(main, None, b2, "set", &[i2]);
    b.vcall(main, Some(o1), b1, "get", &[]);
    b.vcall(main, Some(o2), b2, "get", &[]);
    b.vcall(main, Some(desc), o1, "describe", &[]);
    b.cast(main, casted, o2, special);
    b.entry(main);
    b.finish()
}

/// Special calls (constructor-style) and a static helper chain.
fn constructors_program() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let node = b.class("Node", Some(obj));
    let next = b.field(node, "next");
    let init = b.method(node, "init", &["n"], false);
    let it = b.this(init);
    let ip = b.param(init, 0);
    b.store(init, it, next, ip);
    let helper = b.method(obj, "helper", &["x"], true);
    let hp = b.param(helper, 0);
    let hr = b.var(helper, "hr");
    b.mov(helper, hr, hp);
    b.ret(helper, hr);

    let main = b.method(obj, "main", &[], true);
    let n1 = b.var(main, "n1");
    let n2 = b.var(main, "n2");
    let got = b.var(main, "got");
    b.alloc(main, n1, node);
    b.alloc(main, n2, node);
    b.specialcall(main, None, n1, init, &[n2]);
    b.scall(main, Some(got), helper, &[n1]);
    let loaded = b.var(main, "loaded");
    b.load(main, loaded, got, next);
    b.entry(main);
    b.finish()
}

/// Mutual recursion through virtual calls.
fn recursion_program() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let ping = b.class("Ping", Some(obj));
    let pong = b.class("Pong", Some(obj));
    let pf = b.field(obj, "peer");
    let ping_go = b.method(ping, "go", &["depth"], false);
    let pong_go = b.method(pong, "go", &["depth"], false);
    {
        let this = b.this(ping_go);
        let peer = b.var(ping_go, "peer");
        let arg = b.param(ping_go, 0);
        b.load(ping_go, peer, this, pf);
        b.vcall(ping_go, None, peer, "go", &[arg]);
    }
    {
        let this = b.this(pong_go);
        let peer = b.var(pong_go, "peer");
        let arg = b.param(pong_go, 0);
        b.load(pong_go, peer, this, pf);
        b.vcall(pong_go, None, peer, "go", &[arg]);
    }
    let main = b.method(obj, "main", &[], true);
    let a = b.var(main, "a");
    let c = b.var(main, "c");
    let d = b.var(main, "d");
    b.alloc(main, a, ping);
    b.alloc(main, c, pong);
    b.alloc(main, d, obj);
    b.store(main, a, pf, c);
    b.store(main, c, pf, a);
    b.vcall(main, None, a, "go", &[d]);
    b.entry(main);
    b.finish()
}

/// Static fields crossing method and context boundaries.
fn globals_program() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let g1 = b.global(obj, "shared");
    let g2 = b.global(obj, "other");
    let writer = b.method(obj, "writer", &["x"], true);
    {
        let x = b.param(writer, 0);
        b.store_global(writer, g1, x);
        let t = b.var(writer, "t");
        b.load_global(writer, t, g2);
        b.store_global(writer, g2, t);
    }
    let reader = b.method(obj, "reader", &[], true);
    {
        let r = b.var(reader, "r");
        b.load_global(reader, r, g1);
        b.store_global(reader, g2, r);
        b.ret(reader, r);
    }
    let main = b.method(obj, "main", &[], true);
    let a = b.var(main, "a");
    let c = b.var(main, "c");
    let out = b.var(main, "out");
    b.alloc(main, a, obj);
    b.alloc(main, c, obj);
    b.scall(main, None, writer, &[a]);
    b.scall(main, None, writer, &[c]);
    b.scall(main, Some(out), reader, &[]);
    b.entry(main);
    b.finish()
}

fn fixtures() -> Vec<(&'static str, Program)> {
    vec![
        ("identity", identity_program()),
        ("boxes", boxes_program()),
        ("constructors", constructors_program()),
        ("recursion", recursion_program()),
        ("globals", globals_program()),
    ]
}

// ------------------------------------------------------------------- tests

#[test]
fn solver_matches_model_insensitive() {
    for (name, p) in fixtures() {
        eprintln!("fixture {name}");
        check_flavor(&p, &Insensitive);
    }
}

#[test]
fn solver_matches_model_call_site_depths() {
    for (name, p) in fixtures() {
        for (k, hk) in [(1, 0), (1, 1), (2, 1)] {
            eprintln!("fixture {name} {k}call+{hk}");
            check_flavor(&p, &CallSiteSensitive::new(k, hk));
        }
    }
}

#[test]
fn solver_matches_model_object_sensitive_depths() {
    for (name, p) in fixtures() {
        for (k, hk) in [(1, 0), (1, 1), (2, 1), (2, 2)] {
            eprintln!("fixture {name} {k}obj+{hk}");
            check_flavor(&p, &ObjectSensitive::new(k, hk));
        }
    }
}

#[test]
fn solver_matches_model_type_sensitive() {
    for (name, p) in fixtures() {
        for (k, hk) in [(1, 1), (2, 1)] {
            eprintln!("fixture {name} {k}type+{hk}");
            let policy = TypeSensitive::new(k, hk, &p);
            check_flavor(&p, &policy);
        }
    }
}

#[test]
fn solver_matches_model_introspective_object_exclusions() {
    for (name, p) in fixtures() {
        eprintln!("fixture {name}");
        // Exclude the first allocation site from refinement.
        let objs = [AllocId(0)];
        let o = ObjectSensitive::new(2, 1);
        check_introspective(&p, &o, &objs, &[], &[]);
    }
}

#[test]
fn solver_matches_model_introspective_site_exclusions() {
    for (name, p) in fixtures() {
        if p.invokes.is_empty() {
            continue;
        }
        eprintln!("fixture {name}");
        let invs = [InvokeId(0)];
        let c = CallSiteSensitive::new(2, 1);
        check_introspective(&p, &c, &[], &invs, &[]);
    }
}

#[test]
fn solver_matches_model_introspective_method_exclusions() {
    for (name, p) in fixtures() {
        eprintln!("fixture {name}");
        // Exclude method 1 (some callee in every fixture).
        let meths = [MethodId(1)];
        let t = TypeSensitive::new(2, 1, &p);
        check_introspective(&p, &t, &[], &[], &meths);
    }
}

#[test]
fn solver_matches_model_introspective_mixed_exclusions() {
    for (name, p) in fixtures() {
        eprintln!("fixture {name}");
        let objs: Vec<AllocId> = p.allocs.ids().step_by(2).collect();
        let invs: Vec<InvokeId> = p.invokes.ids().step_by(2).collect();
        let meths = [MethodId(0)];
        let o = ObjectSensitive::new(2, 1);
        check_introspective(&p, &o, &objs, &invs, &meths);
    }
}
