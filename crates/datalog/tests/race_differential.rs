//! Differential testing of the data-race client: the optimized detector
//! in `rudoop-core` must produce a race set *byte-identical* to the
//! Datalog reference model, on hand-seeded concurrent programs and on
//! DaCapo-shaped workloads with the concurrency battery enabled, for the
//! insensitive, `2objH`, and introspective-A/B flavors.
//!
//! The suite also asserts the soundness/precision contract as supersets —
//! not just logs it: a coarser abstraction can only *add* races, so
//!
//! ```text
//! races(2objH)  ⊆  races(introspective 2objH)  ⊆  races(insensitive)
//! ```
//!
//! and at least one committed workload demonstrates the paper's
//! across-the-board claim on this client: `2objH` eliminates a false race
//! the insensitive analysis reports (per-thread worker state merged under
//! context insensitivity).

use rudoop_core::driver::{analyze_introspective, Flavor};
use rudoop_core::heuristics::{HeuristicA, HeuristicB, RefinementHeuristic};
use rudoop_core::policy::{ContextPolicy, Insensitive, ObjectSensitive, RefinementSet};
use rudoop_core::races::{analyze_races, RaceKey};
use rudoop_core::solver::{analyze, SolverConfig};
use rudoop_datalog::run_race_model;
use rudoop_ir::{ClassHierarchy, MethodId, Program, ProgramBuilder};
use rudoop_workloads::{dacapo, WorkloadSpec};

type RaceSet = Vec<(RaceKey, (MethodId, usize), (MethodId, usize))>;

fn record_config() -> SolverConfig {
    SolverConfig {
        record_contexts: true,
        ..SolverConfig::default()
    }
}

/// Optimized race set under a plain (non-introspective) policy.
fn core_races(
    program: &Program,
    hierarchy: &ClassHierarchy,
    policy: &dyn ContextPolicy,
) -> RaceSet {
    let r = analyze(program, hierarchy, policy, &record_config());
    assert!(r.outcome.is_complete(), "stopped early: {:?}", r.exhaustion);
    analyze_races(program, &r).unwrap().race_set()
}

/// Reference race set for the same plain policy.
fn model_races(
    program: &Program,
    hierarchy: &ClassHierarchy,
    policy: &dyn ContextPolicy,
) -> RaceSet {
    let refine_all = RefinementSet::refine_all(program);
    run_race_model(program, hierarchy, &Insensitive, policy, &refine_all)
        .unwrap()
        .races
}

/// Optimized + reference race sets for introspective `2objH` under the
/// given heuristic; the model consumes the exact refinement the two-pass
/// driver selected.
fn introspective_races(
    program: &Program,
    hierarchy: &ClassHierarchy,
    heuristic: &dyn RefinementHeuristic,
) -> (RaceSet, RaceSet) {
    let run = analyze_introspective(
        program,
        hierarchy,
        Flavor::OBJ2H,
        heuristic,
        &record_config(),
    );
    assert!(run.result.outcome.is_complete());
    let core = analyze_races(program, &run.result).unwrap().race_set();
    let model = run_race_model(
        program,
        hierarchy,
        &Insensitive,
        &ObjectSensitive::new(2, 1),
        &run.refinement,
    )
    .unwrap()
    .races;
    (core, model)
}

fn assert_subset(finer: &RaceSet, coarser: &RaceSet, what: &str) {
    for race in finer {
        assert!(
            coarser.binary_search(race).is_ok(),
            "{what}: race {race:?} reported by the finer analysis is missing from the \
             coarser one — soundness violated"
        );
    }
}

/// The full check battery for one program. Returns the insensitive race
/// count (so callers can assert fixtures actually race).
fn check_program(name: &str, program: &Program) -> usize {
    let hierarchy = ClassHierarchy::new(program);

    let insens_core = core_races(program, &hierarchy, &Insensitive);
    let insens_model = model_races(program, &hierarchy, &Insensitive);
    assert_eq!(insens_core, insens_model, "{name}: insensitive");

    let obj = ObjectSensitive::new(2, 1);
    let obj_core = core_races(program, &hierarchy, &obj);
    let obj_model = model_races(program, &hierarchy, &obj);
    assert_eq!(obj_core, obj_model, "{name}: 2objH");

    let (ia_core, ia_model) = introspective_races(program, &hierarchy, &HeuristicA::default());
    assert_eq!(ia_core, ia_model, "{name}: introspective-A");
    let (ib_core, ib_model) = introspective_races(program, &hierarchy, &HeuristicB::default());
    assert_eq!(ib_core, ib_model, "{name}: introspective-B");

    // Soundness chain: the finer analysis must never see a race the
    // coarser one misses.
    assert_subset(&obj_core, &ia_core, &format!("{name}: 2objH ⊆ introA"));
    assert_subset(&obj_core, &ib_core, &format!("{name}: 2objH ⊆ introB"));
    assert_subset(&ia_core, &insens_core, &format!("{name}: introA ⊆ insens"));
    assert_subset(&ib_core, &insens_core, &format!("{name}: introB ⊆ insens"));

    insens_core.len()
}

// ---------------------------------------------------------------- seeded
//
// Six hand-seeded concurrent programs, each stressing a different clause
// of the race formulation: unguarded sharing, per-thread state that only
// context sensitivity separates, common-lock exclusion, join ordering,
// interprocedural must-locks, static slots, and multi-target locks.

/// Two workers bump the same counter field with no guard: one real race
/// under every flavor.
fn shared_counter_seed() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let counter = b.class("Counter", Some(obj));
    let worker = b.class("Worker", Some(obj));
    let hits = b.field(counter, "hits");
    let cfld = b.field(worker, "c");
    let runm = b.method(worker, "run", &[], false);
    let this = b.this(runm);
    let rc = b.var(runm, "rc");
    let rv = b.var(runm, "rv");
    b.load(runm, rc, this, cfld);
    b.alloc(runm, rv, obj);
    b.store(runm, rc, hits, rv);
    let main = b.method(obj, "main", &[], true);
    let c = b.var(main, "c");
    let w1 = b.var(main, "w1");
    let w2 = b.var(main, "w2");
    b.alloc(main, c, counter);
    b.alloc(main, w1, worker);
    b.alloc(main, w2, worker);
    b.store(main, w1, cfld, c);
    b.store(main, w2, cfld, c);
    b.spawn(main, w1);
    b.spawn(main, w2);
    b.entry(main);
    b.finish()
}

/// Each worker bumps its *own* counter: context insensitivity merges the
/// two worker objects (`this.c` points at both counters from both
/// threads), manufacturing a false race that `2objH` eliminates.
fn private_counters_seed() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let counter = b.class("Counter", Some(obj));
    let worker = b.class("Worker", Some(obj));
    let hits = b.field(counter, "hits");
    let cfld = b.field(worker, "c");
    let runm = b.method(worker, "run", &[], false);
    let this = b.this(runm);
    let rc = b.var(runm, "rc");
    let rv = b.var(runm, "rv");
    b.load(runm, rc, this, cfld);
    b.alloc(runm, rv, obj);
    b.store(runm, rc, hits, rv);
    let main = b.method(obj, "main", &[], true);
    let c1 = b.var(main, "c1");
    let c2 = b.var(main, "c2");
    let w1 = b.var(main, "w1");
    let w2 = b.var(main, "w2");
    b.alloc(main, c1, counter);
    b.alloc(main, c2, counter);
    b.alloc(main, w1, worker);
    b.alloc(main, w2, worker);
    b.store(main, w1, cfld, c1);
    b.store(main, w2, cfld, c2);
    b.spawn(main, w1);
    b.spawn(main, w2);
    b.entry(main);
    b.finish()
}

/// Both workers write a shared cache slot under one shared lock object:
/// the common must-lock suppresses the race under every flavor, while an
/// unguarded sibling field keeps the program racy.
fn guarded_cache_seed() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let cache = b.class("Cache", Some(obj));
    let worker = b.class("Worker", Some(obj));
    let val = b.field(cache, "val");
    let stat = b.field(cache, "stat");
    let cfld = b.field(worker, "cache");
    let lfld = b.field(worker, "lock");
    let runm = b.method(worker, "run", &[], false);
    let this = b.this(runm);
    let rc = b.var(runm, "rc");
    let rl = b.var(runm, "rl");
    let rv = b.var(runm, "rv");
    let rs = b.var(runm, "rs");
    b.load(runm, rc, this, cfld);
    b.load(runm, rl, this, lfld);
    b.alloc(runm, rv, obj);
    b.monitor_enter(runm, rl);
    b.store(runm, rc, val, rv);
    b.monitor_exit(runm, rl);
    b.alloc(runm, rs, obj);
    b.store(runm, rc, stat, rs);
    let main = b.method(obj, "main", &[], true);
    let c = b.var(main, "c");
    let lk = b.var(main, "lk");
    let w1 = b.var(main, "w1");
    let w2 = b.var(main, "w2");
    b.alloc(main, c, cache);
    b.alloc(main, lk, obj);
    b.alloc(main, w1, worker);
    b.alloc(main, w2, worker);
    b.store(main, w1, cfld, c);
    b.store(main, w1, lfld, lk);
    b.store(main, w2, cfld, c);
    b.store(main, w2, lfld, lk);
    b.spawn(main, w1);
    b.spawn(main, w2);
    b.entry(main);
    b.finish()
}

/// Main spawns a worker, joins it, and only then writes the same slot the
/// worker wrote — the join orders main's write against that worker, and
/// writing *before* the second spawn orders it against the other. The one
/// surviving race is worker-vs-worker (the detector does not track
/// transitive happens-before through the join, by design).
fn join_ordering_seed() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let cell = b.class("Cell", Some(obj));
    let worker = b.class("Worker", Some(obj));
    let slot = b.field(cell, "slot");
    let cfld = b.field(worker, "cell");
    let runm = b.method(worker, "run", &[], false);
    let this = b.this(runm);
    let rc = b.var(runm, "rc");
    let rv = b.var(runm, "rv");
    b.load(runm, rc, this, cfld);
    b.alloc(runm, rv, obj);
    b.store(runm, rc, slot, rv);
    let main = b.method(obj, "main", &[], true);
    let c = b.var(main, "c");
    let w = b.var(main, "w");
    let w2 = b.var(main, "w2");
    let mv = b.var(main, "mv");
    b.alloc(main, c, cell);
    b.alloc(main, w, worker);
    b.store(main, w, cfld, c);
    b.spawn(main, w);
    b.join(main, w);
    b.alloc(main, mv, obj);
    b.store(main, c, slot, mv);
    b.alloc(main, w2, worker);
    b.store(main, w2, cfld, c);
    b.spawn(main, w2);
    b.entry(main);
    b.finish()
}

/// The lock is taken in `run` but the write happens in a callee: the
/// interprocedural must-lock fixpoint has to carry the held lock across
/// the call edge for the exclusion to hold.
fn lock_ladder_seed() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let cell = b.class("Cell", Some(obj));
    let worker = b.class("Worker", Some(obj));
    let slot = b.field(cell, "slot");
    let open = b.field(cell, "open");
    let cfld = b.field(worker, "cell");
    let lfld = b.field(worker, "lock");
    let stepm = b.method(worker, "step", &[], false);
    let sthis = b.this(stepm);
    let sc = b.var(stepm, "sc");
    let sv = b.var(stepm, "sv");
    let so = b.var(stepm, "so");
    b.load(stepm, sc, sthis, cfld);
    b.alloc(stepm, sv, obj);
    b.store(stepm, sc, slot, sv);
    b.alloc(stepm, so, obj);
    b.store(stepm, sc, open, so);
    let runm = b.method(worker, "run", &[], false);
    let this = b.this(runm);
    let rl = b.var(runm, "rl");
    b.load(runm, rl, this, lfld);
    b.monitor_enter(runm, rl);
    b.vcall(runm, None, this, "step", &[]);
    b.monitor_exit(runm, rl);
    let main = b.method(obj, "main", &[], true);
    let c = b.var(main, "c");
    let lk = b.var(main, "lk");
    let w1 = b.var(main, "w1");
    let w2 = b.var(main, "w2");
    b.alloc(main, c, cell);
    b.alloc(main, lk, obj);
    b.alloc(main, w1, worker);
    b.alloc(main, w2, worker);
    b.store(main, w1, cfld, c);
    b.store(main, w1, lfld, lk);
    b.store(main, w2, cfld, c);
    b.store(main, w2, lfld, lk);
    b.spawn(main, w1);
    b.spawn(main, w2);
    b.entry(main);
    b.finish()
}

/// Static slots always conflict (no base aliasing required), and a lock
/// variable that resolves to *two* allocation sites provides no must-alias
/// exclusion: both clauses on one program.
fn static_and_many_locks_seed() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let registry = b.class("Registry", Some(obj));
    let worker = b.class("Worker", Some(obj));
    let all = b.global(registry, "all");
    let lfld = b.field(worker, "lock");
    let runm = b.method(worker, "run", &[], false);
    let this = b.this(runm);
    let rl = b.var(runm, "rl");
    let rv = b.var(runm, "rv");
    b.load(runm, rl, this, lfld);
    b.monitor_enter(runm, rl);
    b.alloc(runm, rv, obj);
    b.store_global(runm, all, rv);
    b.monitor_exit(runm, rl);
    let main = b.method(obj, "main", &[], true);
    let l1 = b.var(main, "l1");
    let l2 = b.var(main, "l2");
    let w1 = b.var(main, "w1");
    let w2 = b.var(main, "w2");
    // Each worker's lock field gets *both* lock objects: every load of the
    // lock sees two targets, so no singleton must-alias guard exists.
    b.alloc(main, l1, obj);
    b.alloc(main, l2, obj);
    b.alloc(main, w1, worker);
    b.alloc(main, w2, worker);
    b.store(main, w1, lfld, l1);
    b.store(main, w1, lfld, l2);
    b.store(main, w2, lfld, l1);
    b.store(main, w2, lfld, l2);
    b.spawn(main, w1);
    b.spawn(main, w2);
    b.entry(main);
    b.finish()
}

#[test]
fn seeded_concurrent_programs_agree_across_flavors() {
    let seeds: [(&str, fn() -> Program, usize); 6] = [
        ("shared_counter", shared_counter_seed, 1),
        ("private_counters", private_counters_seed, 1),
        ("guarded_cache", guarded_cache_seed, 1),
        ("join_ordering", join_ordering_seed, 1),
        ("lock_ladder", lock_ladder_seed, 0),
        ("static_and_many_locks", static_and_many_locks_seed, 1),
    ];
    for (name, build, min_insens) in seeds {
        let program = build();
        let n = check_program(name, &program);
        assert!(
            n >= min_insens,
            "{name}: expected ≥ {min_insens} insensitive race(s), got {n}"
        );
    }
}

#[test]
fn context_sensitivity_eliminates_the_private_counter_false_race() {
    // The across-the-board claim on this client, in miniature: insens
    // merges the per-thread counters into a false race, 2objH separates
    // the worker contexts and the race vanishes — in the optimized
    // detector *and* in the reference model.
    let program = private_counters_seed();
    let hierarchy = ClassHierarchy::new(&program);
    let insens = core_races(&program, &hierarchy, &Insensitive);
    let obj = core_races(&program, &hierarchy, &ObjectSensitive::new(2, 1));
    assert!(!insens.is_empty(), "insens should report the false race");
    assert!(obj.is_empty(), "2objH should eliminate it: {obj:?}");
    assert_eq!(
        model_races(&program, &hierarchy, &Insensitive),
        insens,
        "model disagrees under insens"
    );
    assert_eq!(
        model_races(&program, &hierarchy, &ObjectSensitive::new(2, 1)),
        obj,
        "model disagrees under 2objH"
    );
}

// ------------------------------------------------------------ workloads

/// A DaCapo-shaped spec shrunk to reference-model scale (the Datalog
/// engine evaluates rules tuple-at-a-time), with the concurrency battery
/// switched on: every shrunk clone keeps each pattern of the original
/// enabled, just smaller.
fn shrink(mut spec: WorkloadSpec) -> WorkloadSpec {
    fn cap(v: &mut usize, at: usize) {
        *v = (*v).min(at);
    }
    cap(&mut spec.pool_values, 8);
    cap(&mut spec.pool_readers, 6);
    cap(&mut spec.wrapper_classes, 2);
    cap(&mut spec.creator_classes, 2);
    cap(&mut spec.creator_instances, 3);
    cap(&mut spec.allocator_classes, 2);
    cap(&mut spec.wrapper_sites_per_class, 2);
    cap(&mut spec.process_steps, 2);
    cap(&mut spec.deep_pool_values, 6);
    cap(&mut spec.deep_creator_classes, 2);
    cap(&mut spec.deep_allocator_classes, 2);
    cap(&mut spec.deep_instances, 2);
    cap(&mut spec.deep_sites_per_class, 2);
    cap(&mut spec.deep_steps, 2);
    cap(&mut spec.util_consumers, 3);
    cap(&mut spec.util_dists, 2);
    cap(&mut spec.util_chain, 2);
    cap(&mut spec.util_moves, 2);
    cap(&mut spec.medium_pool, 6);
    cap(&mut spec.probes_clean, 2);
    cap(&mut spec.probes_type_friendly, 2);
    cap(&mut spec.probes_medium, 2);
    cap(&mut spec.listeners, 2);
    cap(&mut spec.visitor_nodes, 2);
    cap(&mut spec.visitor_kinds, 2);
    cap(&mut spec.stream_depth, 2);
    cap(&mut spec.app_classes, 2);
    cap(&mut spec.app_casts, 2);
    spec.concurrency = 2;
    spec
}

#[test]
fn dacapo_concurrency_workloads_agree_across_flavors() {
    for base in dacapo::all_nine() {
        let spec = shrink(base);
        let program = spec.build();
        let races = check_program(&spec.name, &program);
        // Every workload carries the concurrency battery: the shared
        // counter race is real under every flavor, so even the insensitive
        // superset in hand here must be non-empty.
        assert!(races >= 1, "{}: expected ≥ 1 race, got {races}", spec.name);
    }
}

#[test]
fn concurrency_battery_separates_flavors() {
    // On the concurrency battery, the insensitive analysis must report
    // strictly more races than 2objH: the farm workers' per-thread state
    // writes only race when context merging conflates the worker objects.
    let spec = shrink(dacapo::antlr());
    let program = spec.build();
    let hierarchy = ClassHierarchy::new(&program);
    let insens = core_races(&program, &hierarchy, &Insensitive);
    let obj = core_races(&program, &hierarchy, &ObjectSensitive::new(2, 1));
    assert!(
        !obj.is_empty(),
        "the shared-counter race must survive 2objH"
    );
    assert!(
        obj.len() < insens.len(),
        "2objH ({}) should be strictly more precise than insensitive ({})",
        obj.len(),
        insens.len()
    );
}
