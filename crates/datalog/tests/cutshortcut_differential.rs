//! Differential testing of the cut-shortcut engine: the optimized solver
//! running `Flavor::CutShortcut` (the flow-graph pre-analysis feeding
//! `SolverConfig::cuts`) must produce relations *byte-identical* to the
//! Datalog reference model extended with the `CUTPARAM`/`CUTRET` negations
//! and the three shortcut rules, on hand-seeded fixtures, arbitrary seeded
//! programs, and DaCapo-shaped workloads — for the base points-to
//! relations and for both downstream clients (taint, races).
//!
//! The suite also pins the engine's place in the precision order:
//!
//! ```text
//! pts(cutshortcut)    ⊆  pts(insensitive)      (pointwise, always)
//! leaks(2objH)        ⊆  leaks(cutshortcut)    ⊆  leaks(insensitive)
//! races(2objH)        ⊆  races(cutshortcut)    ⊆  races(insensitive)
//! ```
//!
//! and demonstrates the strict-precision half of the contract: on the
//! setter/getter litmus the cut-shortcut analysis separates boxes that
//! context insensitivity merges, without building a single context.

use rudoop_core::context::ContextElem;
use rudoop_core::cutshortcut::CutSummary;
use rudoop_core::driver::{analyze_flavor, Flavor};
use rudoop_core::policy::{
    ContextPolicy, CutShortcut, Insensitive, ObjectSensitive, RefinementSet,
};
use rudoop_core::races::{analyze_races, RaceKey};
use rudoop_core::solver::{analyze, SolverConfig};
use rudoop_core::taint::analyze_taint;
use rudoop_datalog::{run_model_with_cuts, run_race_model_with_cuts, run_taint_model_with_cuts};
use rudoop_ir::arbitrary::{generate_with_taint, ProgramShape};
use rudoop_ir::{ClassHierarchy, InvokeId, MethodId, Program, ProgramBuilder, TaintSpec};
use rudoop_workloads::{dacapo, WorkloadSpec};

type LeakSet = Vec<(InvokeId, InvokeId, u32)>;
type RaceSet = Vec<(RaceKey, (MethodId, usize), (MethodId, usize))>;

fn record_config() -> SolverConfig {
    SolverConfig {
        record_contexts: true,
        ..SolverConfig::default()
    }
}

/// Canonical, implementation-independent renderings of the relations.
#[derive(Debug, PartialEq, Eq)]
struct Canonical {
    var_points_to: Vec<(u32, Vec<ContextElem>, u32, Vec<ContextElem>)>,
    call_graph: Vec<(u32, Vec<ContextElem>, u32, Vec<ContextElem>)>,
    reachable: Vec<(u32, Vec<ContextElem>)>,
}

impl Canonical {
    /// Context-erased `(var, heap)` projection of `VarPointsTo`.
    fn projected_pts(&self) -> Vec<(u32, u32)> {
        let mut v: Vec<_> = self.var_points_to.iter().map(|t| (t.0, t.2)).collect();
        v.sort();
        v.dedup();
        v
    }
}

/// Optimized-solver relations under `Flavor::CutShortcut` (the driver
/// computes the cut summary and threads it through `SolverConfig::cuts`).
fn canonical_cut_solver(program: &Program, hierarchy: &ClassHierarchy) -> Canonical {
    let r = analyze_flavor(program, hierarchy, Flavor::CutShortcut, &record_config());
    assert!(r.outcome.is_complete(), "stopped early: {:?}", r.exhaustion);
    let dump = r.cs_dump.unwrap_or_default();
    let t = &r.tables;
    let mut var_points_to: Vec<_> = dump
        .var_points_to
        .iter()
        .map(|&(v, c, h, hc)| (v.0, t.ctx_elems(c).to_vec(), h.0, t.hctx_elems(hc).to_vec()))
        .collect();
    var_points_to.sort();
    var_points_to.dedup();
    let mut call_graph: Vec<_> = dump
        .call_graph
        .iter()
        .map(|&(i, c1, m, c2)| (i.0, t.ctx_elems(c1).to_vec(), m.0, t.ctx_elems(c2).to_vec()))
        .collect();
    call_graph.sort();
    call_graph.dedup();
    let mut reachable: Vec<_> = dump
        .reachable
        .iter()
        .map(|&(m, c)| (m.0, t.ctx_elems(c).to_vec()))
        .collect();
    reachable.sort();
    reachable.dedup();
    Canonical {
        var_points_to,
        call_graph,
        reachable,
    }
}

/// Reference-model relations with the same cut summary loaded as EDB
/// facts (`CUTPARAM`/`CUTRET` negations + shortcut rules).
fn canonical_cut_model(program: &Program, hierarchy: &ClassHierarchy) -> Canonical {
    let cuts = CutSummary::compute(program);
    let refine_all = RefinementSet::refine_all(program);
    let m = run_model_with_cuts(
        program,
        hierarchy,
        &Insensitive,
        &CutShortcut,
        &refine_all,
        Some(&cuts),
    )
    .unwrap();
    let t = &m.tables;
    let mut var_points_to: Vec<_> = m
        .var_points_to
        .iter()
        .map(|&(v, c, h, hc)| (v.0, t.ctx_elems(c).to_vec(), h.0, t.hctx_elems(hc).to_vec()))
        .collect();
    var_points_to.sort();
    var_points_to.dedup();
    let mut call_graph: Vec<_> = m
        .call_graph
        .iter()
        .map(|&(i, c1, mm, c2)| {
            (
                i.0,
                t.ctx_elems(c1).to_vec(),
                mm.0,
                t.ctx_elems(c2).to_vec(),
            )
        })
        .collect();
    call_graph.sort();
    call_graph.dedup();
    let mut reachable: Vec<_> = m
        .reachable
        .iter()
        .map(|&(mm, c)| (mm.0, t.ctx_elems(c).to_vec()))
        .collect();
    reachable.sort();
    reachable.dedup();
    Canonical {
        var_points_to,
        call_graph,
        reachable,
    }
}

/// Context-erased `(var, heap)` pairs for a plain policy, from the solver.
fn projected_solver_pts(
    program: &Program,
    hierarchy: &ClassHierarchy,
    policy: &dyn ContextPolicy,
) -> Vec<(u32, u32)> {
    let r = analyze(program, hierarchy, policy, &record_config());
    assert!(r.outcome.is_complete(), "stopped early: {:?}", r.exhaustion);
    let dump = r.cs_dump.unwrap_or_default();
    let mut v: Vec<_> = dump
        .var_points_to
        .iter()
        .map(|&(var, _, h, _)| (var.0, h.0))
        .collect();
    v.sort();
    v.dedup();
    v
}

fn assert_subset<T: Ord + std::fmt::Debug>(finer: &[T], coarser: &[T], what: &str) {
    for item in finer {
        assert!(
            coarser.binary_search(item).is_ok(),
            "{what}: tuple {item:?} reported by the finer analysis is missing from the \
             coarser one — soundness violated"
        );
    }
}

/// The base-relation battery for one program: solver ≡ model under the
/// cut-shortcut flavor, and the context-erased points-to sets sandwich
/// between `2objH` and insensitive.
fn check_base(name: &str, program: &Program) {
    let hierarchy = ClassHierarchy::new(program);
    let solver = canonical_cut_solver(program, &hierarchy);
    let model = canonical_cut_model(program, &hierarchy);
    assert_eq!(solver, model, "{name}: cutshortcut solver ≢ model");

    let cut_pts = solver.projected_pts();
    let insens_pts = projected_solver_pts(program, &hierarchy, &Insensitive);
    assert_subset(
        &cut_pts,
        &insens_pts,
        &format!("{name}: pts(cutshortcut) ⊆ pts(insens)"),
    );
}

// ---------------------------------------------------------------- leaks

fn solver_leaks(
    program: &Program,
    hierarchy: &ClassHierarchy,
    spec: &TaintSpec,
    flavor: Flavor,
) -> LeakSet {
    let r = analyze_flavor(program, hierarchy, flavor, &record_config());
    assert!(r.outcome.is_complete(), "stopped early: {:?}", r.exhaustion);
    analyze_taint(program, spec, &r).unwrap().leak_set()
}

fn model_cut_leaks(program: &Program, hierarchy: &ClassHierarchy, spec: &TaintSpec) -> LeakSet {
    let cuts = CutSummary::compute(program);
    let refine_all = RefinementSet::refine_all(program);
    run_taint_model_with_cuts(
        program,
        hierarchy,
        spec,
        &Insensitive,
        &CutShortcut,
        &refine_all,
        Some(&cuts),
    )
    .unwrap()
    .leaks
}

/// The taint battery: solver ≡ model under cut-shortcut, plus the
/// `leaks(2objH) ⊆ leaks(cutshortcut) ⊆ leaks(insens)` chain.
fn check_taint(name: &str, program: &Program, spec: &TaintSpec) {
    let hierarchy = ClassHierarchy::new(program);
    let cut = solver_leaks(program, &hierarchy, spec, Flavor::CutShortcut);
    let model = model_cut_leaks(program, &hierarchy, spec);
    assert_eq!(cut, model, "{name}: cutshortcut taint solver ≢ model");

    let insens = solver_leaks(program, &hierarchy, spec, Flavor::Insensitive);
    let obj = solver_leaks(program, &hierarchy, spec, Flavor::OBJ2H);
    assert_subset(
        &obj,
        &cut,
        &format!("{name}: leaks(2objH) ⊆ leaks(cutshortcut)"),
    );
    assert_subset(
        &cut,
        &insens,
        &format!("{name}: leaks(cutshortcut) ⊆ leaks(insens)"),
    );
}

// ---------------------------------------------------------------- races

fn solver_races(program: &Program, hierarchy: &ClassHierarchy, flavor: Flavor) -> RaceSet {
    let r = analyze_flavor(program, hierarchy, flavor, &record_config());
    assert!(r.outcome.is_complete(), "stopped early: {:?}", r.exhaustion);
    analyze_races(program, &r).unwrap().race_set()
}

fn model_cut_races(program: &Program, hierarchy: &ClassHierarchy) -> RaceSet {
    let cuts = CutSummary::compute(program);
    let refine_all = RefinementSet::refine_all(program);
    run_race_model_with_cuts(
        program,
        hierarchy,
        &Insensitive,
        &CutShortcut,
        &refine_all,
        Some(&cuts),
    )
    .unwrap()
    .races
}

/// The race battery: solver ≡ model under cut-shortcut, plus the
/// `races(2objH) ⊆ races(cutshortcut) ⊆ races(insens)` chain.
fn check_races(name: &str, program: &Program) {
    let hierarchy = ClassHierarchy::new(program);
    let cut = solver_races(program, &hierarchy, Flavor::CutShortcut);
    let model = model_cut_races(program, &hierarchy);
    assert_eq!(cut, model, "{name}: cutshortcut race solver ≢ model");

    let insens = solver_races(program, &hierarchy, Flavor::Insensitive);
    let obj = solver_races(program, &hierarchy, Flavor::OBJ2H);
    assert_subset(
        &obj,
        &cut,
        &format!("{name}: races(2objH) ⊆ races(cutshortcut)"),
    );
    assert_subset(
        &cut,
        &insens,
        &format!("{name}: races(cutshortcut) ⊆ races(insens)"),
    );
}

// ---------------------------------------------------------------- fixtures

/// Identity functions, two static call sites: both calls are cut, the
/// results flow directly from the arguments. A third, result-less call
/// exercises the drop-entirely arm.
fn identity_program() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let id_m = b.method(obj, "id", &["x"], true);
    let xp = b.param(id_m, 0);
    b.ret(id_m, xp);
    let main = b.method(obj, "main", &[], true);
    let a = b.var(main, "a");
    let c = b.var(main, "c");
    let r1 = b.var(main, "r1");
    let r2 = b.var(main, "r2");
    b.alloc(main, a, obj);
    b.alloc(main, c, obj);
    b.scall(main, Some(r1), id_m, &[a]);
    b.scall(main, Some(r2), id_m, &[c]);
    b.scall(main, None, id_m, &[a]);
    b.entry(main);
    b.finish()
}

/// Boxes with set/get through `this` — the setter/getter litmus. Cutting
/// `set`'s value parameter and `get`'s return turns the transparent
/// method bodies into caller-side field accesses, separating the two
/// boxes without contexts.
fn boxes_program() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let item = b.class("Item", Some(obj));
    let special = b.class("SpecialItem", Some(item));
    let box_c = b.class("Box", Some(obj));
    let f = b.field(box_c, "val");
    let set_m = b.method(box_c, "set", &["v"], false);
    let st = b.this(set_m);
    let sv = b.param(set_m, 0);
    b.store(set_m, st, f, sv);
    let get_m = b.method(box_c, "get", &[], false);
    let gt = b.this(get_m);
    let gr = b.var(get_m, "r");
    b.load(get_m, gr, gt, f);
    b.ret(get_m, gr);
    let main = b.method(obj, "main", &[], true);
    let b1 = b.var(main, "b1");
    let b2 = b.var(main, "b2");
    let i1 = b.var(main, "i1");
    let i2 = b.var(main, "i2");
    let o1 = b.var(main, "o1");
    let o2 = b.var(main, "o2");
    b.alloc(main, b1, box_c);
    b.alloc(main, b2, box_c);
    b.alloc(main, i1, item);
    b.alloc(main, i2, special);
    b.vcall(main, None, b1, "set", &[i1]);
    b.vcall(main, None, b2, "set", &[i2]);
    b.vcall(main, Some(o1), b1, "get", &[]);
    b.vcall(main, Some(o2), b2, "get", &[]);
    b.entry(main);
    b.finish()
}

/// A method whose parameter escapes into a field of a fresh object: not
/// cuttable (the parameter has a non-copy use on a non-`this` base), so
/// the call edge must stay intact and keep the callee reachable.
fn escape_program() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let holder = b.class("Holder", Some(obj));
    let f = b.field(holder, "held");
    let keep_m = b.method(obj, "keep", &["x"], true);
    let kx = b.param(keep_m, 0);
    let kh = b.var(keep_m, "h");
    b.alloc(keep_m, kh, holder);
    b.store(keep_m, kh, f, kx);
    b.ret(keep_m, kh);
    let main = b.method(obj, "main", &[], true);
    let a = b.var(main, "a");
    let r = b.var(main, "r");
    let out = b.var(main, "out");
    b.alloc(main, a, obj);
    b.scall(main, Some(r), keep_m, &[a]);
    b.load(main, out, r, f);
    b.entry(main);
    b.finish()
}

fn fixtures() -> Vec<(&'static str, Program)> {
    vec![
        ("identity", identity_program()),
        ("boxes", boxes_program()),
        ("escape", escape_program()),
    ]
}

// ------------------------------------------------------------------ tests

#[test]
fn fixtures_pin_cutshortcut_to_model() {
    for (name, program) in fixtures() {
        check_base(name, &program);
    }
}

#[test]
fn cutshortcut_separates_boxes_without_contexts() {
    // Strict precision over insensitivity: on the setter/getter litmus
    // the cut-shortcut engine must shrink the context-erased points-to
    // set (o1 no longer sees box 2's item), matching 2objH's answer.
    let program = boxes_program();
    let hierarchy = ClassHierarchy::new(&program);
    let cut = projected_solver_pts(&program, &hierarchy, &CutShortcut);
    // `projected_solver_pts` runs a bare policy without cuts — go through
    // the flavor driver so the summary is attached.
    let cut_flavored = canonical_cut_solver(&program, &hierarchy).projected_pts();
    let insens = projected_solver_pts(&program, &hierarchy, &Insensitive);
    let obj = projected_solver_pts(&program, &hierarchy, &ObjectSensitive::new(2, 1));
    // Without cuts the CutShortcut policy is just insensitivity...
    assert_eq!(cut, insens, "bare CutShortcut policy should equal insens");
    // ...with cuts it is strictly smaller — and on this fixture at least
    // as small as 2objH: the cut call edges make the setter/getter bodies
    // fully transparent, so their formals carry no tuples at all, while
    // 2objH still populates them (once per receiver context).
    assert!(
        cut_flavored.len() < insens.len(),
        "cutshortcut ({}) should be strictly more precise than insens ({})",
        cut_flavored.len(),
        insens.len()
    );
    assert_subset(&cut_flavored, &obj, "boxes: pts(cutshortcut) ⊆ pts(2objH)");
}

#[test]
fn seeded_programs_pin_cutshortcut_to_model() {
    let shape = ProgramShape::default();
    for seed in 0..16u64 {
        let (program, spec) = generate_with_taint(&shape, seed, 2);
        let name = format!("seed {seed}");
        check_base(&name, &program);
        check_taint(&name, &program, &spec);
    }
}

// ------------------------------------------------------------ workloads

/// A DaCapo-shaped spec shrunk to reference-model scale (the Datalog
/// engine evaluates rules tuple-at-a-time); every pattern of the original
/// stays enabled, just smaller, with the taint battery switched on.
fn shrink(mut spec: WorkloadSpec) -> WorkloadSpec {
    fn cap(v: &mut usize, at: usize) {
        *v = (*v).min(at);
    }
    cap(&mut spec.pool_values, 8);
    cap(&mut spec.pool_readers, 6);
    cap(&mut spec.wrapper_classes, 2);
    cap(&mut spec.creator_classes, 2);
    cap(&mut spec.creator_instances, 3);
    cap(&mut spec.allocator_classes, 2);
    cap(&mut spec.wrapper_sites_per_class, 2);
    cap(&mut spec.process_steps, 2);
    cap(&mut spec.deep_pool_values, 6);
    cap(&mut spec.deep_creator_classes, 2);
    cap(&mut spec.deep_allocator_classes, 2);
    cap(&mut spec.deep_instances, 2);
    cap(&mut spec.deep_sites_per_class, 2);
    cap(&mut spec.deep_steps, 2);
    cap(&mut spec.util_consumers, 3);
    cap(&mut spec.util_dists, 2);
    cap(&mut spec.util_chain, 2);
    cap(&mut spec.util_moves, 2);
    cap(&mut spec.medium_pool, 6);
    cap(&mut spec.probes_clean, 2);
    cap(&mut spec.probes_type_friendly, 2);
    cap(&mut spec.probes_medium, 2);
    cap(&mut spec.listeners, 2);
    cap(&mut spec.visitor_nodes, 2);
    cap(&mut spec.visitor_kinds, 2);
    cap(&mut spec.stream_depth, 2);
    cap(&mut spec.app_classes, 2);
    cap(&mut spec.app_casts, 2);
    spec.taint_flows = 1;
    spec
}

#[test]
fn dacapo_workloads_pin_cutshortcut_to_model() {
    for base in dacapo::all_nine() {
        let spec = shrink(base);
        let program = spec.build();
        let taint = spec.taint_spec(&program);
        check_base(&spec.name, &program);
        check_taint(&spec.name, &program, &taint);
    }
}

#[test]
fn dacapo_concurrency_workloads_pin_cutshortcut_races_to_model() {
    for base in dacapo::all_nine() {
        let mut spec = shrink(base);
        spec.taint_flows = 0;
        spec.concurrency = 2;
        let program = spec.build();
        check_races(&spec.name, &program);
    }
}
