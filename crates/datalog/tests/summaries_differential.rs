//! Differential testing of the summary-based compositional engine: the
//! optimized solver running `Flavor::Summaries` (the bottom-up SCC pass
//! feeding `SolverConfig::summaries`) must produce relations
//! *byte-identical* to the Datalog reference model extended with the
//! `SUMRET` negation and the four summary-instantiation rules, on
//! hand-seeded fixtures, arbitrary seeded programs, and DaCapo-shaped
//! workloads — for the base points-to relations and for both downstream
//! clients (taint, races).
//!
//! The suite also pins the engine's place in the precision order, the
//! defining contract of the flavor:
//!
//! ```text
//! pts(2objH)    ⊆  pts(summaries)    ⊆  pts(insensitive)
//! leaks(2objH)  ⊆  leaks(summaries)  ⊆  leaks(insensitive)
//! races(2objH)  ⊆  races(summaries)  ⊆  races(insensitive)
//! ```
//!
//! and demonstrates both halves of the design decision behind it: on the
//! setter/getter litmus the receiver-filtered `ThisFieldToRet` atoms
//! separate boxes that context insensitivity merges (strict precision),
//! while on the identity litmus the formal-reading `ParamToRet` atoms
//! deliberately *match* insensitivity — a per-site argument edge would
//! out-precision `2objH` where it conflates static call sites, breaking
//! the upper chain.

use rudoop_core::context::ContextElem;
use rudoop_core::driver::{analyze_flavor, Flavor};
use rudoop_core::policy::{ContextPolicy, Insensitive, ObjectSensitive, RefinementSet, Summaries};
use rudoop_core::races::{analyze_races, RaceKey};
use rudoop_core::solver::{analyze, SolverConfig};
use rudoop_core::summaries::SummaryTable;
use rudoop_core::taint::analyze_taint;
use rudoop_datalog::{
    run_model_with_summaries, run_race_model_with_summaries, run_taint_model_with_summaries,
};
use rudoop_ir::arbitrary::{generate_with_taint, ProgramShape};
use rudoop_ir::{ClassHierarchy, InvokeId, MethodId, Program, ProgramBuilder, TaintSpec};
use rudoop_workloads::{dacapo, WorkloadSpec};

type LeakSet = Vec<(InvokeId, InvokeId, u32)>;
type RaceSet = Vec<(RaceKey, (MethodId, usize), (MethodId, usize))>;

fn record_config() -> SolverConfig {
    SolverConfig {
        record_contexts: true,
        ..SolverConfig::default()
    }
}

/// Canonical, implementation-independent renderings of the relations.
#[derive(Debug, PartialEq, Eq)]
struct Canonical {
    var_points_to: Vec<(u32, Vec<ContextElem>, u32, Vec<ContextElem>)>,
    call_graph: Vec<(u32, Vec<ContextElem>, u32, Vec<ContextElem>)>,
    reachable: Vec<(u32, Vec<ContextElem>)>,
}

impl Canonical {
    /// Context-erased `(var, heap)` projection of `VarPointsTo`.
    fn projected_pts(&self) -> Vec<(u32, u32)> {
        let mut v: Vec<_> = self.var_points_to.iter().map(|t| (t.0, t.2)).collect();
        v.sort();
        v.dedup();
        v
    }
}

/// Optimized-solver relations under `Flavor::Summaries` (the driver
/// computes the summary table and threads it through
/// `SolverConfig::summaries`).
fn canonical_summary_solver(program: &Program, hierarchy: &ClassHierarchy) -> Canonical {
    let r = analyze_flavor(program, hierarchy, Flavor::Summaries, &record_config());
    assert!(r.outcome.is_complete(), "stopped early: {:?}", r.exhaustion);
    let dump = r.cs_dump.unwrap_or_default();
    let t = &r.tables;
    let mut var_points_to: Vec<_> = dump
        .var_points_to
        .iter()
        .map(|&(v, c, h, hc)| (v.0, t.ctx_elems(c).to_vec(), h.0, t.hctx_elems(hc).to_vec()))
        .collect();
    var_points_to.sort();
    var_points_to.dedup();
    let mut call_graph: Vec<_> = dump
        .call_graph
        .iter()
        .map(|&(i, c1, m, c2)| (i.0, t.ctx_elems(c1).to_vec(), m.0, t.ctx_elems(c2).to_vec()))
        .collect();
    call_graph.sort();
    call_graph.dedup();
    let mut reachable: Vec<_> = dump
        .reachable
        .iter()
        .map(|&(m, c)| (m.0, t.ctx_elems(c).to_vec()))
        .collect();
    reachable.sort();
    reachable.dedup();
    Canonical {
        var_points_to,
        call_graph,
        reachable,
    }
}

/// Reference-model relations with the same summary table loaded as EDB
/// facts (`SUMRET` negation + the four instantiation rules).
fn canonical_summary_model(program: &Program, hierarchy: &ClassHierarchy) -> Canonical {
    let table = SummaryTable::compute(program, hierarchy);
    let refine_all = RefinementSet::refine_all(program);
    let m = run_model_with_summaries(
        program,
        hierarchy,
        &Insensitive,
        &Summaries,
        &refine_all,
        Some(&table),
    )
    .unwrap();
    let t = &m.tables;
    let mut var_points_to: Vec<_> = m
        .var_points_to
        .iter()
        .map(|&(v, c, h, hc)| (v.0, t.ctx_elems(c).to_vec(), h.0, t.hctx_elems(hc).to_vec()))
        .collect();
    var_points_to.sort();
    var_points_to.dedup();
    let mut call_graph: Vec<_> = m
        .call_graph
        .iter()
        .map(|&(i, c1, mm, c2)| {
            (
                i.0,
                t.ctx_elems(c1).to_vec(),
                mm.0,
                t.ctx_elems(c2).to_vec(),
            )
        })
        .collect();
    call_graph.sort();
    call_graph.dedup();
    let mut reachable: Vec<_> = m
        .reachable
        .iter()
        .map(|&(mm, c)| (mm.0, t.ctx_elems(c).to_vec()))
        .collect();
    reachable.sort();
    reachable.dedup();
    Canonical {
        var_points_to,
        call_graph,
        reachable,
    }
}

/// Context-erased `(var, heap)` pairs for a plain policy, from the solver.
fn projected_solver_pts(
    program: &Program,
    hierarchy: &ClassHierarchy,
    policy: &dyn ContextPolicy,
) -> Vec<(u32, u32)> {
    let r = analyze(program, hierarchy, policy, &record_config());
    assert!(r.outcome.is_complete(), "stopped early: {:?}", r.exhaustion);
    let dump = r.cs_dump.unwrap_or_default();
    let mut v: Vec<_> = dump
        .var_points_to
        .iter()
        .map(|&(var, _, h, _)| (var.0, h.0))
        .collect();
    v.sort();
    v.dedup();
    v
}

fn assert_subset<T: Ord + std::fmt::Debug>(finer: &[T], coarser: &[T], what: &str) {
    for item in finer {
        assert!(
            coarser.binary_search(item).is_ok(),
            "{what}: tuple {item:?} reported by the finer analysis is missing from the \
             coarser one — soundness violated"
        );
    }
}

/// The base-relation battery for one program: solver ≡ model under the
/// summaries flavor, and the context-erased points-to sets sandwich
/// between `2objH` and insensitive — the full chain, both directions.
fn check_base(name: &str, program: &Program) {
    let hierarchy = ClassHierarchy::new(program);
    let solver = canonical_summary_solver(program, &hierarchy);
    let model = canonical_summary_model(program, &hierarchy);
    assert_eq!(solver, model, "{name}: summaries solver ≢ model");

    let sum_pts = solver.projected_pts();
    let insens_pts = projected_solver_pts(program, &hierarchy, &Insensitive);
    let obj_pts = projected_solver_pts(program, &hierarchy, &ObjectSensitive::new(2, 1));
    assert_subset(
        &obj_pts,
        &sum_pts,
        &format!("{name}: pts(2objH) ⊆ pts(summaries)"),
    );
    assert_subset(
        &sum_pts,
        &insens_pts,
        &format!("{name}: pts(summaries) ⊆ pts(insens)"),
    );
}

// ---------------------------------------------------------------- leaks

fn solver_leaks(
    program: &Program,
    hierarchy: &ClassHierarchy,
    spec: &TaintSpec,
    flavor: Flavor,
) -> LeakSet {
    let r = analyze_flavor(program, hierarchy, flavor, &record_config());
    assert!(r.outcome.is_complete(), "stopped early: {:?}", r.exhaustion);
    analyze_taint(program, spec, &r).unwrap().leak_set()
}

fn model_summary_leaks(program: &Program, hierarchy: &ClassHierarchy, spec: &TaintSpec) -> LeakSet {
    let table = SummaryTable::compute(program, hierarchy);
    let refine_all = RefinementSet::refine_all(program);
    run_taint_model_with_summaries(
        program,
        hierarchy,
        spec,
        &Insensitive,
        &Summaries,
        &refine_all,
        Some(&table),
    )
    .unwrap()
    .leaks
}

/// The taint battery: solver ≡ model under summaries, plus the
/// `leaks(2objH) ⊆ leaks(summaries) ⊆ leaks(insens)` chain.
fn check_taint(name: &str, program: &Program, spec: &TaintSpec) {
    let hierarchy = ClassHierarchy::new(program);
    let sum = solver_leaks(program, &hierarchy, spec, Flavor::Summaries);
    let model = model_summary_leaks(program, &hierarchy, spec);
    assert_eq!(sum, model, "{name}: summaries taint solver ≢ model");

    let insens = solver_leaks(program, &hierarchy, spec, Flavor::Insensitive);
    let obj = solver_leaks(program, &hierarchy, spec, Flavor::OBJ2H);
    assert_subset(
        &obj,
        &sum,
        &format!("{name}: leaks(2objH) ⊆ leaks(summaries)"),
    );
    assert_subset(
        &sum,
        &insens,
        &format!("{name}: leaks(summaries) ⊆ leaks(insens)"),
    );
}

// ---------------------------------------------------------------- races

fn solver_races(program: &Program, hierarchy: &ClassHierarchy, flavor: Flavor) -> RaceSet {
    let r = analyze_flavor(program, hierarchy, flavor, &record_config());
    assert!(r.outcome.is_complete(), "stopped early: {:?}", r.exhaustion);
    analyze_races(program, &r).unwrap().race_set()
}

fn model_summary_races(program: &Program, hierarchy: &ClassHierarchy) -> RaceSet {
    let table = SummaryTable::compute(program, hierarchy);
    let refine_all = RefinementSet::refine_all(program);
    run_race_model_with_summaries(
        program,
        hierarchy,
        &Insensitive,
        &Summaries,
        &refine_all,
        Some(&table),
    )
    .unwrap()
    .races
}

/// The race battery: solver ≡ model under summaries, plus the
/// `races(2objH) ⊆ races(summaries) ⊆ races(insens)` chain.
fn check_races(name: &str, program: &Program) {
    let hierarchy = ClassHierarchy::new(program);
    let sum = solver_races(program, &hierarchy, Flavor::Summaries);
    let model = model_summary_races(program, &hierarchy);
    assert_eq!(sum, model, "{name}: summaries race solver ≢ model");

    let insens = solver_races(program, &hierarchy, Flavor::Insensitive);
    let obj = solver_races(program, &hierarchy, Flavor::OBJ2H);
    assert_subset(
        &obj,
        &sum,
        &format!("{name}: races(2objH) ⊆ races(summaries)"),
    );
    assert_subset(
        &sum,
        &insens,
        &format!("{name}: races(summaries) ⊆ races(insens)"),
    );
}

// ---------------------------------------------------------------- fixtures

/// Identity function, two static call sites with distinct arguments, plus
/// a result-less third call. `id` distills to `ParamToRet(id, 0)`; both
/// results read the shared formal.
fn identity_program() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let id_m = b.method(obj, "id", &["x"], true);
    let xp = b.param(id_m, 0);
    b.ret(id_m, xp);
    let main = b.method(obj, "main", &[], true);
    let a = b.var(main, "a");
    let c = b.var(main, "c");
    let r1 = b.var(main, "r1");
    let r2 = b.var(main, "r2");
    b.alloc(main, a, obj);
    b.alloc(main, c, obj);
    b.scall(main, Some(r1), id_m, &[a]);
    b.scall(main, Some(r2), id_m, &[c]);
    b.scall(main, None, id_m, &[a]);
    b.entry(main);
    b.finish()
}

/// Boxes filled by *direct* caller-side stores and read through a shared
/// getter — the getter litmus. `get` distills to `ThisFieldToRet(val)`,
/// so each call site loads the field through *its own* receiver objects,
/// separating the two boxes without building a single context. (A shared
/// *setter* would re-conflate the fields before the getter filter could
/// help: summaries shortcut return edges only, unlike the cut-shortcut
/// engine's setter cuts.)
fn boxes_program() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let item = b.class("Item", Some(obj));
    let special = b.class("SpecialItem", Some(item));
    let box_c = b.class("Box", Some(obj));
    let f = b.field(box_c, "val");
    let get_m = b.method(box_c, "get", &[], false);
    let gt = b.this(get_m);
    let gr = b.var(get_m, "r");
    b.load(get_m, gr, gt, f);
    b.ret(get_m, gr);
    let main = b.method(obj, "main", &[], true);
    let b1 = b.var(main, "b1");
    let b2 = b.var(main, "b2");
    let i1 = b.var(main, "i1");
    let i2 = b.var(main, "i2");
    let o1 = b.var(main, "o1");
    let o2 = b.var(main, "o2");
    b.alloc(main, b1, box_c);
    b.alloc(main, b2, box_c);
    b.alloc(main, i1, item);
    b.alloc(main, i2, special);
    b.store(main, b1, f, i1);
    b.store(main, b2, f, i2);
    b.vcall(main, Some(o1), b1, "get", &[]);
    b.vcall(main, Some(o2), b2, "get", &[]);
    b.entry(main);
    b.finish()
}

/// A factory whose parameter escapes into a field of the returned fresh
/// object. The return slice is just the allocation (`AllocToRet`), while
/// the escaping store rides on the untouched argument edges — the call
/// edge must stay intact and keep the callee reachable.
fn escape_program() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let holder = b.class("Holder", Some(obj));
    let f = b.field(holder, "held");
    let keep_m = b.method(obj, "keep", &["x"], true);
    let kx = b.param(keep_m, 0);
    let kh = b.var(keep_m, "h");
    b.alloc(keep_m, kh, holder);
    b.store(keep_m, kh, f, kx);
    b.ret(keep_m, kh);
    let main = b.method(obj, "main", &[], true);
    let a = b.var(main, "a");
    let r = b.var(main, "r");
    let out = b.var(main, "out");
    b.alloc(main, a, obj);
    b.scall(main, Some(r), keep_m, &[a]);
    b.load(main, out, r, f);
    b.entry(main);
    b.finish()
}

/// A two-method recursion distilled to an SCC fixpoint, called from two
/// static sites — exercises composed `ParamToRet` atoms (which keep
/// pointing at the *inner* formal) against the model.
fn recursion_program() -> Program {
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let box_c = b.class("Box", Some(obj));
    let f_m = b.method(obj, "f", &["x"], true);
    let g_m = b.method(obj, "g", &["y"], true);
    let fx = b.param(f_m, 0);
    let fr = b.var(f_m, "r");
    b.scall(f_m, Some(fr), g_m, &[fx]);
    b.ret(f_m, fr);
    let gy = b.param(g_m, 0);
    let gt = b.var(g_m, "t");
    let gr = b.var(g_m, "r");
    b.alloc(g_m, gt, box_c);
    b.ret(g_m, gt);
    b.ret(g_m, gy);
    b.scall(g_m, Some(gr), f_m, &[gy]);
    b.ret(g_m, gr);
    let main = b.method(obj, "main", &[], true);
    let a = b.var(main, "a");
    let c = b.var(main, "c");
    let r1 = b.var(main, "r1");
    let r2 = b.var(main, "r2");
    b.alloc(main, a, obj);
    b.alloc(main, c, box_c);
    b.scall(main, Some(r1), f_m, &[a]);
    b.scall(main, Some(r2), g_m, &[c]);
    b.entry(main);
    b.finish()
}

fn fixtures() -> Vec<(&'static str, Program)> {
    vec![
        ("identity", identity_program()),
        ("boxes", boxes_program()),
        ("escape", escape_program()),
        ("recursion", recursion_program()),
    ]
}

// ------------------------------------------------------------------ tests

#[test]
fn fixtures_pin_summaries_to_model() {
    for (name, program) in fixtures() {
        check_base(name, &program);
    }
}

#[test]
fn summaries_separate_boxes_without_contexts() {
    // Strict precision over insensitivity: on the setter/getter litmus the
    // receiver-filtered `ThisFieldToRet` instantiation must shrink the
    // context-erased points-to set (o1 no longer sees box 2's item).
    let program = boxes_program();
    let hierarchy = ClassHierarchy::new(&program);
    let bare = projected_solver_pts(&program, &hierarchy, &Summaries);
    // `projected_solver_pts` runs the bare policy without a table — go
    // through the flavor driver so the summary pass is attached.
    let sum = canonical_summary_solver(&program, &hierarchy).projected_pts();
    let insens = projected_solver_pts(&program, &hierarchy, &Insensitive);
    let obj = projected_solver_pts(&program, &hierarchy, &ObjectSensitive::new(2, 1));
    // Without a table the Summaries policy is just insensitivity...
    assert_eq!(bare, insens, "bare Summaries policy should equal insens");
    // ...with one it is strictly smaller, and sandwiched by 2objH.
    assert!(
        sum.len() < insens.len(),
        "summaries ({}) should be strictly more precise than insens ({})",
        sum.len(),
        insens.len()
    );
    assert_subset(&obj, &sum, "boxes: pts(2objH) ⊆ pts(summaries)");
}

#[test]
fn formal_reading_param_atoms_match_insens_on_identity() {
    // The deliberate imprecision half of the chain contract: `ParamToRet`
    // reads the shared formal (the union over call sites), so on the
    // identity litmus — where 2objH itself conflates the static sites —
    // summaries, 2objH and insens all agree. A per-site argument edge
    // would make r1/r2 more precise than 2objH here and break
    // `pts(2objH) ⊆ pts(summaries)`.
    let program = identity_program();
    let hierarchy = ClassHierarchy::new(&program);
    let sum = canonical_summary_solver(&program, &hierarchy).projected_pts();
    let insens = projected_solver_pts(&program, &hierarchy, &Insensitive);
    let obj = projected_solver_pts(&program, &hierarchy, &ObjectSensitive::new(2, 1));
    assert_eq!(sum, insens, "identity: summaries should equal insens");
    assert_eq!(obj, insens, "identity: 2objH conflates the static sites");
}

#[test]
fn seeded_programs_pin_summaries_to_model() {
    let shape = ProgramShape::default();
    for seed in 0..16u64 {
        let (program, spec) = generate_with_taint(&shape, seed, 2);
        let name = format!("seed {seed}");
        check_base(&name, &program);
        check_taint(&name, &program, &spec);
    }
}

// ------------------------------------------------------------ workloads

/// A DaCapo-shaped spec shrunk to reference-model scale (the Datalog
/// engine evaluates rules tuple-at-a-time); every pattern of the original
/// stays enabled, just smaller, with the taint battery switched on.
fn shrink(mut spec: WorkloadSpec) -> WorkloadSpec {
    fn cap(v: &mut usize, at: usize) {
        *v = (*v).min(at);
    }
    cap(&mut spec.pool_values, 8);
    cap(&mut spec.pool_readers, 6);
    cap(&mut spec.wrapper_classes, 2);
    cap(&mut spec.creator_classes, 2);
    cap(&mut spec.creator_instances, 3);
    cap(&mut spec.allocator_classes, 2);
    cap(&mut spec.wrapper_sites_per_class, 2);
    cap(&mut spec.process_steps, 2);
    cap(&mut spec.deep_pool_values, 6);
    cap(&mut spec.deep_creator_classes, 2);
    cap(&mut spec.deep_allocator_classes, 2);
    cap(&mut spec.deep_instances, 2);
    cap(&mut spec.deep_sites_per_class, 2);
    cap(&mut spec.deep_steps, 2);
    cap(&mut spec.util_consumers, 3);
    cap(&mut spec.util_dists, 2);
    cap(&mut spec.util_chain, 2);
    cap(&mut spec.util_moves, 2);
    cap(&mut spec.medium_pool, 6);
    cap(&mut spec.probes_clean, 2);
    cap(&mut spec.probes_type_friendly, 2);
    cap(&mut spec.probes_medium, 2);
    cap(&mut spec.listeners, 2);
    cap(&mut spec.visitor_nodes, 2);
    cap(&mut spec.visitor_kinds, 2);
    cap(&mut spec.stream_depth, 2);
    cap(&mut spec.app_classes, 2);
    cap(&mut spec.app_casts, 2);
    spec.taint_flows = 1;
    spec
}

#[test]
fn dacapo_workloads_pin_summaries_to_model() {
    for base in dacapo::all_nine() {
        let spec = shrink(base);
        let program = spec.build();
        let taint = spec.taint_spec(&program);
        check_base(&spec.name, &program);
        check_taint(&spec.name, &program, &taint);
    }
}

#[test]
fn dacapo_concurrency_workloads_pin_summaries_races_to_model() {
    for base in dacapo::all_nine() {
        let mut spec = shrink(base);
        spec.taint_flows = 0;
        spec.concurrency = 2;
        let program = spec.build();
        check_races(&spec.name, &program);
    }
}
