//! Edge-case tests for the Datalog engine beyond the happy paths in the
//! unit suite: deep strata, self-joins, functions in recursive rules,
//! empty relations, and wide tuples.

use rudoop_datalog::{Engine, RuleBuilder, RuleError};

#[test]
fn three_strata_evaluate_in_order() {
    let mut e = Engine::new();
    let base = e.relation("base", 1);
    let a = e.relation("a", 1);
    let b = e.relation("b", 1);
    let c = e.relation("c", 1);
    // a(x) <- base(x). b(x) <- base(x), !a(x)... empty.
    // c(x) <- base(x), !b(x): everything (b empty).
    e.add_rule(
        RuleBuilder::new("a")
            .head(a, &["x"])
            .pos(base, &["x"])
            .build()
            .unwrap(),
    )
    .unwrap();
    e.add_rule(
        RuleBuilder::new("b")
            .head(b, &["x"])
            .pos(base, &["x"])
            .neg(a, &["x"])
            .build()
            .unwrap(),
    )
    .unwrap();
    e.add_rule(
        RuleBuilder::new("c")
            .head(c, &["x"])
            .pos(base, &["x"])
            .neg(b, &["x"])
            .build()
            .unwrap(),
    )
    .unwrap();
    e.fact(base, &[1]);
    e.fact(base, &[2]);
    e.run().unwrap();
    assert_eq!(e.len(a), 2);
    assert_eq!(e.len(b), 0);
    assert_eq!(e.len(c), 2);
}

#[test]
fn self_join_same_relation_twice() {
    let mut e = Engine::new();
    let edge = e.relation("edge", 2);
    let tri = e.relation("two_step", 2);
    e.add_rule(
        RuleBuilder::new("two")
            .head(tri, &["x", "z"])
            .pos(edge, &["x", "y"])
            .pos(edge, &["y", "z"])
            .build()
            .unwrap(),
    )
    .unwrap();
    for (a, b) in [(1, 2), (2, 3), (3, 1)] {
        e.fact(edge, &[a, b]);
    }
    e.run().unwrap();
    assert_eq!(e.len(tri), 3);
    assert!(e.contains(tri, &[1, 3]));
    assert!(e.contains(tri, &[3, 2]));
}

#[test]
fn functions_inside_recursion_reach_fixpoint() {
    // count-up: n(x) and x < 5 derives n(x+1) via an external successor
    // function plus a guard relation of allowed values.
    let mut e = Engine::new();
    let allowed = e.relation("allowed", 1);
    let n = e.relation("n", 1);
    let succ = e.function("succ", |a: &[u32]| a[0] + 1);
    e.add_rule(
        RuleBuilder::new("step")
            .head(n, &["y"])
            .pos(n, &["x"])
            .func(succ, &["x"], "y")
            .pos(allowed, &["y"])
            .build()
            .unwrap(),
    )
    .unwrap();
    for v in 1..=5 {
        e.fact(allowed, &[v]);
    }
    e.fact(n, &[0]);
    e.run().unwrap();
    assert_eq!(e.len(n), 6); // 0..=5
    assert!(e.contains(n, &[5]));
    assert!(!e.contains(n, &[6]));
}

#[test]
fn empty_body_relations_derive_nothing() {
    let mut e = Engine::new();
    let a = e.relation("a", 1);
    let b = e.relation("b", 1);
    e.add_rule(
        RuleBuilder::new("r")
            .head(b, &["x"])
            .pos(a, &["x"])
            .build()
            .unwrap(),
    )
    .unwrap();
    let stats = e.run().unwrap();
    assert!(e.is_empty(b));
    assert_eq!(stats.derived, 0);
}

#[test]
fn wide_tuples_round_trip() {
    let mut e = Engine::new();
    let wide = e.relation("wide", 6);
    let narrow = e.relation("narrow", 2);
    e.add_rule(
        RuleBuilder::new("proj")
            .head(narrow, &["a", "f"])
            .pos(wide, &["a", "b", "c", "d", "e", "f"])
            .build()
            .unwrap(),
    )
    .unwrap();
    e.fact(wide, &[1, 2, 3, 4, 5, 6]);
    e.fact(wide, &[1, 9, 9, 9, 9, 6]);
    e.run().unwrap();
    assert_eq!(e.len(narrow), 1, "projection deduplicates");
    assert!(e.contains(narrow, &[1, 6]));
}

#[test]
fn duplicate_facts_are_deduplicated() {
    let mut e = Engine::new();
    let r = e.relation("r", 1);
    e.fact(r, &[7]);
    e.fact(r, &[7]);
    assert_eq!(e.len(r), 1);
}

#[test]
fn constants_bind_in_function_results() {
    // head fires only when f(x) == 10.
    let mut e = Engine::new();
    let input = e.relation("in", 1);
    let out = e.relation("out", 1);
    let double = e.function("double", |a: &[u32]| a[0] * 2);
    e.add_rule(
        RuleBuilder::new("eq")
            .head(out, &["x"])
            .pos(input, &["x"])
            .func(double, &["x"], "#10")
            .build()
            .unwrap(),
    )
    .unwrap();
    e.fact(input, &[5]);
    e.fact(input, &[6]);
    e.run().unwrap();
    assert_eq!(e.len(out), 1);
    assert!(e.contains(out, &[5]));
}

#[test]
fn unstratifiable_cycle_through_two_relations() {
    let mut e = Engine::new();
    let p = e.relation("p", 1);
    let q = e.relation("q", 1);
    let seed = e.relation("seed", 1);
    e.add_rule(
        RuleBuilder::new("pq")
            .head(p, &["x"])
            .pos(seed, &["x"])
            .neg(q, &["x"])
            .build()
            .unwrap(),
    )
    .unwrap();
    e.add_rule(
        RuleBuilder::new("qp")
            .head(q, &["x"])
            .pos(seed, &["x"])
            .neg(p, &["x"])
            .build()
            .unwrap(),
    )
    .unwrap();
    e.fact(seed, &[1]);
    assert!(matches!(e.run(), Err(RuleError::Unstratifiable { .. })));
}
