//! The race client as a Datalog-backed reference model — the executable
//! specification the optimized race detector in `rudoop-core` is
//! differential-tested against.
//!
//! The monotone half of the client — which `(method, context)` instances
//! each abstract thread may execute — is genuine Datalog over the
//! Figure 2–3 base model, with spawn sites switching threads:
//!
//! ```text
//! exec-entry  EXEC(#main, meth, #0)  :- ENTRY(meth).
//! exec-call   EXEC(t, m2, c2)        :- CALLGRAPH(invo, c1, m2, c2), INVOKEIN(invo, m1),
//!                                       EXEC(t, m1, c1), !SPAWNSITE(invo).
//! exec-spawn  EXEC(t2, m2, c2)       :- CALLGRAPH(invo, c1, m2, c2), INVOKEIN(invo, m1),
//!                                       EXEC(_, m1, c1), THREADOF(invo, t2).
//! ```
//!
//! where `SPAWNSITE`, `THREADOF` (one fresh thread constant per spawn
//! site), and `INVOKEIN` (call site → enclosing method) are extra EDB
//! facts read straight off the IR.
//!
//! The rest of the client is deliberately *not* expressed as rules: the
//! once/multi classification counts call sites, may-happen-in-parallel is
//! a negation over that count, must-lock sets are a *greatest* fixpoint
//! (set intersection over paths), and lock resolution demands "points to
//! exactly one allocation site" — cardinality tests and GFPs that plain
//! stratified Datalog cannot state. Those parts run here as a naive,
//! quadratic, obviously-correct Rust spec over the engine's fixpoint
//! tuples (transitive closure instead of Tarjan SCCs, full pairwise
//! intersection instead of merge scans), mirroring the definitions in
//! `rudoop_core::races` clause by clause. The differential suite pins the
//! projected race sets of the two implementations byte-identical.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use rudoop_core::context::CtxTables;
use rudoop_core::policy::{ContextPolicy, RefinementSet};
use rudoop_core::races::{RaceKey, Site};
use rudoop_ir::{
    AllocId, ClassHierarchy, Instruction, InvokeId, InvokeKind, MethodId, Program, VarId,
};

use crate::engine::Engine;
use crate::model::install_base_model;
use crate::rule::{RuleBuilder, RuleError};

/// The race relations computed by [`run_race_model`].
#[derive(Debug, Clone, Default)]
pub struct RaceModelResult {
    /// Projected race triples `(key, site A, site B)` with A ≤ B, sorted
    /// and deduplicated — the canonical form compared against
    /// [`rudoop_core::races::RaceResult::race_set`].
    pub races: Vec<(RaceKey, Site, Site)>,
    /// Number of EXEC tuples the engine derived (context-sensitive).
    pub exec_tuples: usize,
    /// Engine rounds.
    pub rounds: u64,
}

/// Runs the points-to model *plus* the EXEC thread rules and the naive
/// race aggregation, returning the projected race set.
/// Context-constructor arguments are as in [`crate::model::run_model`].
///
/// # Errors
///
/// Propagates [`RuleError`] from rule construction (a bug, not an input
/// condition — the rules are fixed).
pub fn run_race_model(
    program: &Program,
    hierarchy: &ClassHierarchy,
    default: &dyn ContextPolicy,
    refined: &dyn ContextPolicy,
    refinement: &RefinementSet,
) -> Result<RaceModelResult, RuleError> {
    run_race_model_with_cuts(program, hierarchy, default, refined, refinement, None)
}

/// [`run_race_model`] over the cut-shortcut base model (see
/// [`crate::model::run_model_with_cuts`]). The EXEC and race rules are
/// untouched; cuts reach the race set only through the base model's
/// `VARPOINTSTO`/`CALLGRAPH` relations.
///
/// # Errors
///
/// Propagates [`RuleError`] from rule construction (a bug, not an input
/// condition — the rules are fixed).
pub fn run_race_model_with_cuts(
    program: &Program,
    hierarchy: &ClassHierarchy,
    default: &dyn ContextPolicy,
    refined: &dyn ContextPolicy,
    refinement: &RefinementSet,
    cuts: Option<&rudoop_core::cutshortcut::CutSummary>,
) -> Result<RaceModelResult, RuleError> {
    run_race_model_extended(program, hierarchy, default, refined, refinement, cuts, None)
}

/// [`run_race_model`] over the summary-instantiating base model (see
/// [`crate::model::run_model_with_summaries`]). The EXEC and race rules
/// are untouched; summaries reach the race set only through the base
/// model's `VARPOINTSTO`/`CALLGRAPH` relations.
///
/// # Errors
///
/// Propagates [`RuleError`] from rule construction (a bug, not an input
/// condition — the rules are fixed).
pub fn run_race_model_with_summaries(
    program: &Program,
    hierarchy: &ClassHierarchy,
    default: &dyn ContextPolicy,
    refined: &dyn ContextPolicy,
    refinement: &RefinementSet,
    summaries: Option<&rudoop_core::summaries::SummaryTable>,
) -> Result<RaceModelResult, RuleError> {
    run_race_model_extended(
        program, hierarchy, default, refined, refinement, None, summaries,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_race_model_extended(
    program: &Program,
    hierarchy: &ClassHierarchy,
    default: &dyn ContextPolicy,
    refined: &dyn ContextPolicy,
    refinement: &RefinementSet,
    cuts: Option<&rudoop_core::cutshortcut::CutSummary>,
    summaries: Option<&rudoop_core::summaries::SummaryTable>,
) -> Result<RaceModelResult, RuleError> {
    let tables = Rc::new(RefCell::new(CtxTables::new()));
    let mut engine = Engine::new();
    let base = install_base_model(
        &mut engine,
        &tables,
        program,
        hierarchy,
        default,
        refined,
        refinement,
        cuts,
        summaries,
    )?;

    // ---- Concurrency EDB ----
    let spawnsite = engine.relation("SPAWNSITE", 1); // invo
    let threadof = engine.relation("THREADOF", 2); // invo, thread
    let invokein = engine.relation("INVOKEIN", 2); // invo, meth

    // ---- Concurrency IDB ----
    let exec = engine.relation("EXEC", 3); // thread, meth, ctx

    let add = |engine: &mut Engine<'_>,
               rule: Result<crate::rule::Rule, RuleError>|
     -> Result<(), RuleError> { engine.add_rule(rule?) };

    // Thread 0 is main; spawn site `invo` runs thread `invo + 1` (the +1
    // keeps the constants collision-free; the aggregation renumbers).
    add(
        &mut engine,
        RuleBuilder::new("exec-entry")
            .head(exec, &["#0", "meth", "#0"])
            .pos(base.entry, &["meth"])
            .build(),
    )?;
    add(
        &mut engine,
        RuleBuilder::new("exec-call")
            .head(exec, &["t", "m2", "c2"])
            .pos(base.callgraph, &["invo", "c1", "m2", "c2"])
            .pos(invokein, &["invo", "m1"])
            .pos(exec, &["t", "m1", "c1"])
            .neg(spawnsite, &["invo"])
            .build(),
    )?;
    add(
        &mut engine,
        RuleBuilder::new("exec-spawn")
            .head(exec, &["t2", "m2", "c2"])
            .pos(base.callgraph, &["invo", "c1", "m2", "c2"])
            .pos(invokein, &["invo", "m1"])
            .pos(exec, &["_", "m1", "c1"])
            .pos(threadof, &["invo", "t2"])
            .build(),
    )?;

    for (iid, inv) in program.invokes.iter() {
        engine.fact(invokein, &[iid.0, inv.method.0]);
    }
    for (_, _, inv) in program.spawn_sites() {
        engine.fact(spawnsite, &[inv.0]);
        engine.fact(threadof, &[inv.0, inv.0 + 1]);
    }

    let stats = engine.run()?;

    let exec_tuples: Vec<(u32, MethodId, u32)> = engine
        .tuples(exec)
        .map(|t| (t[0], MethodId(t[1]), t[2]))
        .collect();
    let call_graph: BTreeSet<(InvokeId, u32, MethodId, u32)> = engine
        .tuples(base.callgraph)
        .map(|t| (InvokeId(t[0]), t[1], MethodId(t[2]), t[3]))
        .collect();
    let reachable: BTreeSet<(MethodId, u32)> = engine
        .tuples(base.reachable)
        .map(|t| (MethodId(t[0]), t[1]))
        .collect();
    let mut vpt: BTreeMap<(VarId, u32), BTreeSet<(AllocId, u32)>> = BTreeMap::new();
    for t in engine.tuples(base.varpointsto) {
        vpt.entry((VarId(t[0]), t[1]))
            .or_default()
            .insert((AllocId(t[2]), t[3]));
    }

    let races = aggregate(program, &exec_tuples, &call_graph, &reachable, &vpt);
    Ok(RaceModelResult {
        races,
        exec_tuples: exec_tuples.len(),
        rounds: stats.rounds,
    })
}

/// Structural concurrency shape of one method body — the naive twin of
/// the core client's `BodyShape`.
#[derive(Debug, Default)]
struct Shape {
    /// `(enter index, exit index, lock var)` per well-bracketed region.
    regions: Vec<(usize, usize, VarId)>,
    /// `(index, receiver var)` per spawn site.
    spawns: Vec<(usize, VarId)>,
    /// `(index, var)` per join.
    joins: Vec<(usize, VarId)>,
    /// Number of body instructions defining each var.
    defs: BTreeMap<VarId, usize>,
}

/// One context-qualified access instance.
#[derive(Debug)]
struct Inst {
    site: (MethodId, usize),
    ctx: u32,
    key: RaceKey,
    base: Option<VarId>,
    write: bool,
    locks: BTreeSet<AllocId>,
    threads: Vec<usize>,
}

/// The non-monotone half of the race client as a naive executable spec:
/// once/multi counting, structural ordering, must-lock greatest fixpoint,
/// singleton must-alias lock resolution, MHP negation, and the final
/// race aggregation — each a direct transcription of the corresponding
/// definition in `rudoop_core::races`, with no attention paid to
/// asymptotics.
fn aggregate(
    program: &Program,
    exec_tuples: &[(u32, MethodId, u32)],
    call_graph: &BTreeSet<(InvokeId, u32, MethodId, u32)>,
    reachable: &BTreeSet<(MethodId, u32)>,
    vpt: &BTreeMap<(VarId, u32), BTreeSet<(AllocId, u32)>>,
) -> Vec<(RaceKey, Site, Site)> {
    // Body index of every invoke site, and per-method structural shape.
    let mut invoke_at: BTreeMap<InvokeId, (MethodId, usize)> = BTreeMap::new();
    let mut shapes: BTreeMap<MethodId, Shape> = BTreeMap::new();
    for (mid, m) in program.methods.iter() {
        let mut shape = Shape::default();
        let mut stack: Vec<(usize, VarId)> = Vec::new();
        for (i, instr) in m.body.iter().enumerate() {
            match *instr {
                Instruction::Call { invoke } => {
                    invoke_at.insert(invoke, (mid, i));
                }
                Instruction::Spawn { invoke } => {
                    invoke_at.insert(invoke, (mid, i));
                    let base = match program.invokes[invoke].kind {
                        InvokeKind::Virtual { base, .. } | InvokeKind::Special { base, .. } => base,
                        InvokeKind::Static { .. } => continue,
                    };
                    shape.spawns.push((i, base));
                }
                Instruction::Join { var } => shape.joins.push((i, var)),
                Instruction::MonitorEnter { var } => stack.push((i, var)),
                Instruction::MonitorExit { var } => {
                    if let Some((enter, v)) = stack.pop() {
                        if v == var {
                            shape.regions.push((enter, i, v));
                        }
                    }
                }
                _ => {}
            }
            if let Some(d) = defined_var(program, instr) {
                *shape.defs.entry(d).or_insert(0) += 1;
            }
        }
        shape.regions.sort_unstable();
        shapes.insert(mid, shape);
    }

    // Threads: 0 is main, then one per spawn site appearing in the call
    // graph, in invoke-id order. Engine thread constants (`invo + 1`)
    // renumber onto this dense range.
    let spawn_site_set: BTreeSet<InvokeId> = program.spawn_sites().map(|(_, _, inv)| inv).collect();
    let spawn_threads: Vec<InvokeId> = call_graph
        .iter()
        .map(|&(inv, _, _, _)| inv)
        .filter(|inv| spawn_site_set.contains(inv))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let thread_roots: Vec<Option<InvokeId>> = std::iter::once(None)
        .chain(spawn_threads.iter().copied().map(Some))
        .collect();
    let thread_of: BTreeMap<InvokeId, usize> = spawn_threads
        .iter()
        .enumerate()
        .map(|(i, &inv)| (inv, i + 1))
        .collect();

    let mut exec: BTreeMap<(MethodId, u32), BTreeSet<usize>> = BTreeMap::new();
    for &(t, m, c) in exec_tuples {
        let local = if t == 0 {
            0
        } else {
            match thread_of.get(&InvokeId(t - 1)) {
                Some(&i) => i,
                None => continue, // spawn site absent from the call graph
            }
        };
        exec.entry((m, c)).or_default().insert(local);
    }

    type CallEdges = BTreeMap<(MethodId, u32), BTreeSet<(InvokeId, MethodId, u32)>>;
    let mut edges_from: CallEdges = BTreeMap::new();
    for &(inv, cctx, m, ectx) in call_graph {
        edges_from
            .entry((program.invokes[inv].method, cctx))
            .or_default()
            .insert((inv, m, ectx));
    }

    let entry_set: BTreeSet<MethodId> = program.entry_points.iter().copied().collect();
    // The base model seeds every entry method as reachable under the empty
    // context (interned as id 0), so the entry seeds are exactly these.
    let entry_seeds: BTreeSet<(MethodId, u32)> = reachable
        .iter()
        .copied()
        .filter(|&(m, c)| c == 0 && entry_set.contains(&m))
        .collect();

    // Once/multi over the projected call graph: two distinct incoming
    // sites (entry counts as one), a cycle, or a multi caller.
    let mut incoming: BTreeMap<MethodId, BTreeSet<InvokeId>> = BTreeMap::new();
    let mut proj_succ: BTreeSet<(MethodId, MethodId)> = BTreeSet::new();
    for &(inv, _, callee, _) in call_graph {
        incoming.entry(callee).or_default().insert(inv);
        proj_succ.insert((program.invokes[inv].method, callee));
    }
    let methods: BTreeSet<MethodId> = reachable.iter().map(|&(m, _)| m).collect();

    // Naive transitive closure: a method is cyclic iff it reaches itself
    // through at least one edge.
    let mut closure = proj_succ.clone();
    loop {
        let mut grew = false;
        let snapshot: Vec<(MethodId, MethodId)> = closure.iter().copied().collect();
        for &(a, b) in &snapshot {
            for &(b2, c) in &snapshot {
                if b == b2 && closure.insert((a, c)) {
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    let mut multi: BTreeSet<MethodId> = BTreeSet::new();
    for &m in &methods {
        let sites = incoming.get(&m).map_or(0, BTreeSet::len);
        if sites + usize::from(entry_set.contains(&m)) >= 2 || closure.contains(&(m, m)) {
            multi.insert(m);
        }
    }
    loop {
        let mut grew = false;
        for &m in &methods {
            if multi.contains(&m) {
                continue;
            }
            let from_multi = incoming.get(&m).is_some_and(|sites| {
                sites
                    .iter()
                    .any(|&inv| multi.contains(&program.invokes[inv].method))
            });
            if from_multi {
                multi.insert(m);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    let self_parallel: Vec<bool> = thread_roots
        .iter()
        .map(|root| match root {
            None => false,
            Some(s) => multi.contains(&program.invokes[*s].method),
        })
        .collect();

    // Lock resolution: a region guards only when its lock var points to
    // exactly one allocation site; pointing to nothing makes the region
    // (and everything inside it) dead.
    let singleton = |v: VarId, c: u32| -> Option<Option<AllocId>> {
        let allocs: BTreeSet<AllocId> = vpt
            .get(&(v, c))
            .map(|objs| objs.iter().map(|&(a, _)| a).collect())
            .unwrap_or_default();
        match allocs.len() {
            0 => None, // dead
            1 => Some(Some(allocs.into_iter().next().unwrap())),
            _ => Some(None), // many: no must-alias, no guard
        }
    };
    let enclosing_locks = |m: MethodId, idx: usize, c: u32| -> Option<BTreeSet<AllocId>> {
        let mut locks = BTreeSet::new();
        for &(enter, exit, v) in &shapes[&m].regions {
            if enter < idx && idx < exit {
                if let Some(h) = singleton(v, c)? {
                    locks.insert(h);
                }
            }
        }
        Some(locks)
    };

    // Interprocedural must-lock sets: greatest fixpoint of
    // MLS(callee) ⊆ MLS(caller) ∪ locks-at-call-site over non-spawn
    // edges, seeded at ∅ for entries and spawn targets. Naively: re-meet
    // every node until nothing shrinks.
    let mut mls: BTreeMap<(MethodId, u32), BTreeSet<AllocId>> = BTreeMap::new();
    for &seed in &entry_seeds {
        mls.insert(seed, BTreeSet::new());
    }
    for &(inv, _, m, c) in call_graph {
        if spawn_site_set.contains(&inv) {
            mls.insert((m, c), BTreeSet::new());
        }
    }
    loop {
        let mut shrunk = false;
        let nodes: Vec<(MethodId, u32)> = mls.keys().copied().collect();
        for node in nodes {
            let held = mls[&node].clone();
            let Some(out) = edges_from.get(&node) else {
                continue;
            };
            for &(inv, m2, c2) in out {
                if spawn_site_set.contains(&inv) {
                    continue;
                }
                let (_, idx) = invoke_at[&inv];
                let Some(site_locks) = enclosing_locks(node.0, idx, node.1) else {
                    continue; // dead call site: no constraint
                };
                let mut contrib = held.clone();
                contrib.extend(site_locks);
                match mls.get_mut(&(m2, c2)) {
                    None => {
                        mls.insert((m2, c2), contrib);
                        shrunk = true;
                    }
                    Some(cur) => {
                        let met: BTreeSet<AllocId> = cur.intersection(&contrib).copied().collect();
                        if met.len() != cur.len() {
                            *cur = met;
                            shrunk = true;
                        }
                    }
                }
            }
        }
        if !shrunk {
            break;
        }
    }

    // Access instances per EXEC node.
    let mut insts: Vec<Inst> = Vec::new();
    for (&(m, c), threads) in &exec {
        for (i, instr) in program.methods[m].body.iter().enumerate() {
            let (key, base, write) = match *instr {
                Instruction::Load { base, field, .. } => (RaceKey::Field(field), Some(base), false),
                Instruction::Store { base, field, .. } => (RaceKey::Field(field), Some(base), true),
                Instruction::LoadGlobal { global, .. } => (RaceKey::Global(global), None, false),
                Instruction::StoreGlobal { global, .. } => (RaceKey::Global(global), None, true),
                _ => continue,
            };
            let Some(mut locks) = enclosing_locks(m, i, c) else {
                continue; // dead: an enclosing lock points to nothing
            };
            if let Some(held) = mls.get(&(m, c)) {
                locks.extend(held.iter().copied());
            }
            insts.push(Inst {
                site: (m, i),
                ctx: c,
                key,
                base,
                write,
                locks,
                threads: threads.iter().copied().collect(),
            });
        }
    }

    let aliases = |a: &Inst, b: &Inst| -> bool {
        match (a.base, b.base) {
            (Some(ba), Some(bb)) => match (vpt.get(&(ba, a.ctx)), vpt.get(&(bb, b.ctx))) {
                (Some(pa), Some(pb)) => pa.intersection(pb).next().is_some(),
                _ => false,
            },
            (None, None) => true, // same global slot (keys already match)
            _ => false,
        }
    };
    // Structural ordering against a thread: the access sits in the
    // once-executed body containing the thread's spawn site, before the
    // spawn or after a matching single-assignment join.
    let ordered_against = |site: (MethodId, usize), t: usize| -> bool {
        let Some(s) = thread_roots[t] else {
            return false;
        };
        let (sm, sidx) = invoke_at[&s];
        if site.0 != sm || multi.contains(&sm) {
            return false;
        }
        if site.1 < sidx {
            return true;
        }
        let shape = &shapes[&sm];
        let Some(&(_, sbase)) = shape.spawns.iter().find(|&&(i, _)| i == sidx) else {
            return false;
        };
        if shape.defs.get(&sbase).copied().unwrap_or(0) > 1 {
            return false;
        }
        shape
            .joins
            .iter()
            .any(|&(jidx, jv)| jv == sbase && jidx > sidx && site.1 > jidx)
    };
    let mhp = |a: &Inst, t1: usize, b: &Inst, t2: usize| -> bool {
        if t1 == t2 {
            return self_parallel[t1];
        }
        !(ordered_against(a.site, t2) || ordered_against(b.site, t1))
    };

    // Race aggregation: same key, ≥ 1 write, disjoint locks, may-alias
    // bases, may-happen-in-parallel threads; project to site pairs.
    let mut races: BTreeSet<(RaceKey, Site, Site)> = BTreeSet::new();
    for a in &insts {
        for b in &insts {
            if a.key != b.key || !(a.write || b.write) {
                continue;
            }
            if !a.locks.is_disjoint(&b.locks) || !aliases(a, b) {
                continue;
            }
            for &t1 in &a.threads {
                for &t2 in &b.threads {
                    if mhp(a, t1, b, t2) {
                        let (sa, sb) = (a.site.min(b.site), a.site.max(b.site));
                        races.insert((a.key, sa, sb));
                    }
                }
            }
        }
    }
    races.into_iter().collect()
}

/// The variable a single instruction defines (at most one) — the naive
/// twin of the core client's helper, for the single-assignment guard on
/// join matching.
fn defined_var(program: &Program, instr: &Instruction) -> Option<VarId> {
    match *instr {
        Instruction::Alloc { var, .. } => Some(var),
        Instruction::Move { to, .. }
        | Instruction::Cast { to, .. }
        | Instruction::Load { to, .. }
        | Instruction::LoadGlobal { to, .. } => Some(to),
        Instruction::Call { invoke } | Instruction::Spawn { invoke } => {
            program.invokes[invoke].result
        }
        Instruction::Store { .. }
        | Instruction::StoreGlobal { .. }
        | Instruction::Return { .. }
        | Instruction::Join { .. }
        | Instruction::MonitorEnter { .. }
        | Instruction::MonitorExit { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rudoop_core::policy::{Insensitive, ObjectSensitive};
    use rudoop_core::races::analyze_races;
    use rudoop_core::solver::{analyze, SolverConfig};
    use rudoop_ir::ProgramBuilder;

    fn core_races(p: &Program, policy: &dyn ContextPolicy) -> Vec<(RaceKey, Site, Site)> {
        let h = ClassHierarchy::new(p);
        let config = SolverConfig {
            record_contexts: true,
            ..SolverConfig::default()
        };
        let r = analyze(p, &h, policy, &config);
        analyze_races(p, &r).unwrap().race_set()
    }

    fn model_races(p: &Program, policy: &dyn ContextPolicy) -> Vec<(RaceKey, Site, Site)> {
        let h = ClassHierarchy::new(p);
        let refine = RefinementSet::refine_all(p);
        run_race_model(p, &h, &Insensitive, policy, &refine)
            .unwrap()
            .races
    }

    fn shared_counter() -> Program {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let counter = b.class("Counter", Some(obj));
        let worker = b.class("Worker", Some(obj));
        let hits = b.field(counter, "hits");
        let cfld = b.field(worker, "c");
        let runm = b.method(worker, "run", &[], false);
        let this = b.this(runm);
        let rc = b.var(runm, "rc");
        let rv = b.var(runm, "rv");
        b.load(runm, rc, this, cfld);
        b.alloc(runm, rv, obj);
        b.store(runm, rc, hits, rv);
        let main = b.method(obj, "main", &[], true);
        let c = b.var(main, "c");
        let w = b.var(main, "w");
        let v = b.var(main, "v");
        b.alloc(main, c, counter);
        b.alloc(main, w, worker);
        b.store(main, w, cfld, c);
        b.spawn(main, w);
        b.alloc(main, v, obj);
        b.store(main, c, hits, v);
        b.entry(main);
        b.finish()
    }

    fn private_counters() -> Program {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let counter = b.class("Counter", Some(obj));
        let worker = b.class("Worker", Some(obj));
        let hits = b.field(counter, "hits");
        let cfld = b.field(worker, "c");
        let runm = b.method(worker, "run", &[], false);
        let this = b.this(runm);
        let rc = b.var(runm, "rc");
        let rv = b.var(runm, "rv");
        b.load(runm, rc, this, cfld);
        b.alloc(runm, rv, obj);
        b.store(runm, rc, hits, rv);
        let main = b.method(obj, "main", &[], true);
        let w1 = b.var(main, "w1");
        let w2 = b.var(main, "w2");
        let c1 = b.var(main, "c1");
        let c2 = b.var(main, "c2");
        b.alloc(main, w1, worker);
        b.alloc(main, c1, counter);
        b.store(main, w1, cfld, c1);
        b.alloc(main, w2, worker);
        b.alloc(main, c2, counter);
        b.store(main, w2, cfld, c2);
        b.spawn(main, w1);
        b.spawn(main, w2);
        b.entry(main);
        b.finish()
    }

    #[test]
    fn model_matches_core_on_shared_counter() {
        let p = shared_counter();
        let model = model_races(&p, &Insensitive);
        let core = core_races(&p, &Insensitive);
        assert!(!core.is_empty(), "fixture must race");
        assert_eq!(model, core);
    }

    #[test]
    fn model_matches_core_on_false_race_elimination() {
        let p = private_counters();
        let insens_model = model_races(&p, &Insensitive);
        let insens_core = core_races(&p, &Insensitive);
        assert_eq!(insens_model, insens_core);
        assert!(!insens_core.is_empty(), "insens must report the false race");

        let obj = ObjectSensitive::new(2, 1);
        let fine_model = model_races(&p, &obj);
        let fine_core = core_races(&p, &obj);
        assert_eq!(fine_model, fine_core);
        assert!(fine_core.is_empty(), "2objH must see distinct counters");
    }

    #[test]
    fn model_respects_join_ordering() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let counter = b.class("Counter", Some(obj));
        let worker = b.class("Worker", Some(obj));
        let hits = b.field(counter, "hits");
        let cfld = b.field(worker, "c");
        let runm = b.method(worker, "run", &[], false);
        let this = b.this(runm);
        let rc = b.var(runm, "rc");
        let rv = b.var(runm, "rv");
        b.load(runm, rc, this, cfld);
        b.alloc(runm, rv, obj);
        b.store(runm, rc, hits, rv);
        let main = b.method(obj, "main", &[], true);
        let c = b.var(main, "c");
        let w = b.var(main, "w");
        let v = b.var(main, "v");
        b.alloc(main, c, counter);
        b.alloc(main, w, worker);
        b.store(main, w, cfld, c);
        b.alloc(main, v, obj);
        b.spawn(main, w);
        b.join(main, w);
        b.store(main, c, hits, v);
        b.entry(main);
        let p = b.finish();
        assert!(model_races(&p, &Insensitive).is_empty());
        assert_eq!(model_races(&p, &Insensitive), core_races(&p, &Insensitive));
    }

    #[test]
    fn model_respects_common_locks() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let counter = b.class("Counter", Some(obj));
        let worker = b.class("Worker", Some(obj));
        let hits = b.field(counter, "hits");
        let cfld = b.field(worker, "c");
        let runm = b.method(worker, "run", &[], false);
        let this = b.this(runm);
        let rc = b.var(runm, "rc");
        let rv = b.var(runm, "rv");
        b.load(runm, rc, this, cfld);
        b.alloc(runm, rv, obj);
        b.monitor_enter(runm, rc);
        b.store(runm, rc, hits, rv);
        b.monitor_exit(runm, rc);
        let main = b.method(obj, "main", &[], true);
        let c = b.var(main, "c");
        let w = b.var(main, "w");
        let v = b.var(main, "v");
        b.alloc(main, c, counter);
        b.alloc(main, w, worker);
        b.store(main, w, cfld, c);
        b.alloc(main, v, obj);
        b.spawn(main, w);
        b.monitor_enter(main, c);
        b.store(main, c, hits, v);
        b.monitor_exit(main, c);
        b.entry(main);
        let p = b.finish();
        assert!(model_races(&p, &Insensitive).is_empty());
        assert_eq!(model_races(&p, &Insensitive), core_races(&p, &Insensitive));
    }
}
