//! # rudoop-datalog
//!
//! A small, general-purpose, semi-naive Datalog engine with stratified
//! negation and **external constructor functions**, plus an executable
//! encoding of the PLDI'14 introspective points-to analysis model
//! (Figures 2–3 of the paper).
//!
//! The engine plays the role LogicBlox plays for Doop: the analysis is
//! *specified* as Datalog rules and the specification itself runs. The
//! optimized solver in `rudoop-core` is differential-tested against
//! [`model::run_model`].
//!
//! # Examples
//!
//! ```
//! use rudoop_datalog::{Engine, RuleBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut engine = Engine::new();
//! let edge = engine.relation("edge", 2);
//! let path = engine.relation("path", 2);
//! engine.add_rule(
//!     RuleBuilder::new("base").head(path, &["x", "y"]).pos(edge, &["x", "y"]).build()?,
//! )?;
//! engine.add_rule(
//!     RuleBuilder::new("step")
//!         .head(path, &["x", "z"])
//!         .pos(edge, &["x", "y"])
//!         .pos(path, &["y", "z"])
//!         .build()?,
//! )?;
//! engine.fact(edge, &[1, 2]);
//! engine.fact(edge, &[2, 3]);
//! engine.run()?;
//! assert!(engine.contains(path, &[1, 3]));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod model;
pub mod races;
pub mod rule;
pub mod taint;

pub use engine::{Engine, RunStats};
pub use model::{run_model, run_model_with_cuts, run_model_with_summaries, ModelResult};
pub use races::{
    run_race_model, run_race_model_with_cuts, run_race_model_with_summaries, RaceModelResult,
};
pub use rule::{Atom, FuncApp, FuncId, Literal, RelId, Rule, RuleBuilder, RuleError, Term, Value};
pub use taint::{
    run_taint_model, run_taint_model_with_cuts, run_taint_model_with_summaries, TaintModelResult,
};
