//! The taint client as Datalog rules over the Figure 2–3 model — the
//! reference semantics the optimized taint analysis in `rudoop-core` is
//! differential-tested against.
//!
//! Taint is labeled propagation: `TAINTEDVAR(var, ctx, src)` says the value
//! of `var` under calling context `ctx` may originate from the *source call
//! site* `src`. The rules piggyback on the model's computed relations
//! (`CALLGRAPH`, `VARPOINTSTO`, `REACHABLE`) so taint flows with exactly
//! the context policy of the underlying points-to run:
//!
//! ```text
//! t-source  TAINTEDVAR(to, ctx, invo)  :- CALLGRAPH(invo, ctx, m, _), SOURCEMETH(m),
//!                                         ACTUALRETURN(invo, to).
//! t-move    TAINTEDVAR(to, ctx, s)     :- MOVE(to, from), TAINTEDVAR(from, ctx, s).
//! t-arg     TAINTEDVAR(to, cc, s)      :- CALLGRAPH(invo, c, m, cc), FORMALARG(m, i, to),
//!                                         ACTUALARG(invo, i, from), TAINTEDVAR(from, c, s).
//! t-ret     TAINTEDVAR(to, c, s)       :- CALLGRAPH(invo, c, m, cc), FORMALRETURN(m, from),
//!                                         ACTUALRETURN(invo, to), TAINTEDVAR(from, cc, s),
//!                                         !SANITIZERMETH(m).
//! t-this-v  TAINTEDVAR(this, cc, s)    :- VCALL(base, _, invo, _), CALLGRAPH(invo, c, m, cc),
//!                                         THISVAR(m, this), TAINTEDVAR(base, c, s).
//! t-this-s  TAINTEDVAR(this, cc, s)    :- SPECIALCALL(base, _, invo, _),
//!                                         CALLGRAPH(invo, c, m, cc), THISVAR(m, this),
//!                                         TAINTEDVAR(base, c, s).
//! t-store   TAINTEDFLD(h, hc, f, s)    :- STORE(base, f, from), TAINTEDVAR(from, c, s),
//!                                         VARPOINTSTO(base, c, h, hc).
//! t-load    TAINTEDVAR(to, c, s)       :- LOAD(to, base, f), VARPOINTSTO(base, c, h, hc),
//!                                         TAINTEDFLD(h, hc, f, s).
//! t-gstore  TAINTEDGLOBAL(g, s)        :- SSTORE(g, from), TAINTEDVAR(from, _, s).
//! t-gload   TAINTEDVAR(to, c, s)       :- SLOAD(to, g, m), REACHABLE(m, c),
//!                                         TAINTEDGLOBAL(g, s).
//! t-leak    LEAK(s, invo, i)           :- CALLGRAPH(invo, c, m, _), SINKMETHARG(m, i),
//!                                         ACTUALARG(invo, i, from), TAINTEDVAR(from, c, s).
//! ```
//!
//! Sanitizers strip taint only at returns (`t-ret`): values still flow
//! *into* a sanitizer's body, which is what lets the lint tier observe
//! "dead sanitizer" call sites.

use std::cell::RefCell;
use std::rc::Rc;

use rudoop_core::context::CtxTables;
use rudoop_core::policy::{ContextPolicy, RefinementSet};
use rudoop_ir::{ClassHierarchy, InvokeId, Program, TaintSpec};

use crate::engine::Engine;
use crate::model::install_base_model;
use crate::rule::{RuleBuilder, RuleError};

/// The taint relations computed by [`run_taint_model`].
#[derive(Debug, Clone, Default)]
pub struct TaintModelResult {
    /// Projected LEAK tuples `(source call site, sink call site, argument)`,
    /// sorted and deduplicated — the canonical leak set.
    pub leaks: Vec<(InvokeId, InvokeId, u32)>,
    /// Number of TAINTEDVAR tuples (context-sensitive), for curiosity.
    pub tainted_var_tuples: usize,
    /// Engine rounds.
    pub rounds: u64,
}

/// Runs the points-to model *plus* the taint rules of `spec` and returns
/// the computed leak set. Context-constructor arguments are as in
/// [`crate::model::run_model`].
///
/// # Errors
///
/// Propagates [`RuleError`] from rule construction (a bug, not an input
/// condition — the rules are fixed).
pub fn run_taint_model(
    program: &Program,
    hierarchy: &ClassHierarchy,
    spec: &TaintSpec,
    default: &dyn ContextPolicy,
    refined: &dyn ContextPolicy,
    refinement: &RefinementSet,
) -> Result<TaintModelResult, RuleError> {
    run_taint_model_with_cuts(program, hierarchy, spec, default, refined, refinement, None)
}

/// [`run_taint_model`] over the cut-shortcut base model (see
/// [`crate::model::run_model_with_cuts`]). The taint rules themselves are
/// untouched — they propagate through `CALLGRAPH`/`FORMALARG` directly, so
/// cuts only affect them via the smaller `VARPOINTSTO` at load/store
/// bases, exactly like the optimized taint client.
///
/// # Errors
///
/// Propagates [`RuleError`] from rule construction (a bug, not an input
/// condition — the rules are fixed).
#[allow(clippy::too_many_arguments)]
pub fn run_taint_model_with_cuts(
    program: &Program,
    hierarchy: &ClassHierarchy,
    spec: &TaintSpec,
    default: &dyn ContextPolicy,
    refined: &dyn ContextPolicy,
    refinement: &RefinementSet,
    cuts: Option<&rudoop_core::cutshortcut::CutSummary>,
) -> Result<TaintModelResult, RuleError> {
    run_taint_model_extended(
        program, hierarchy, spec, default, refined, refinement, cuts, None,
    )
}

/// [`run_taint_model`] over the summary-instantiating base model (see
/// [`crate::model::run_model_with_summaries`]). The taint rules themselves
/// are untouched — they propagate through `CALLGRAPH`/`FORMALARG`
/// directly, so summaries only affect them via the base model's
/// `VARPOINTSTO`, exactly like the optimized taint client.
///
/// # Errors
///
/// Propagates [`RuleError`] from rule construction (a bug, not an input
/// condition — the rules are fixed).
#[allow(clippy::too_many_arguments)]
pub fn run_taint_model_with_summaries(
    program: &Program,
    hierarchy: &ClassHierarchy,
    spec: &TaintSpec,
    default: &dyn ContextPolicy,
    refined: &dyn ContextPolicy,
    refinement: &RefinementSet,
    summaries: Option<&rudoop_core::summaries::SummaryTable>,
) -> Result<TaintModelResult, RuleError> {
    run_taint_model_extended(
        program, hierarchy, spec, default, refined, refinement, None, summaries,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_taint_model_extended(
    program: &Program,
    hierarchy: &ClassHierarchy,
    spec: &TaintSpec,
    default: &dyn ContextPolicy,
    refined: &dyn ContextPolicy,
    refinement: &RefinementSet,
    cuts: Option<&rudoop_core::cutshortcut::CutSummary>,
    summaries: Option<&rudoop_core::summaries::SummaryTable>,
) -> Result<TaintModelResult, RuleError> {
    let tables = Rc::new(RefCell::new(CtxTables::new()));
    let mut engine = Engine::new();
    let base = install_base_model(
        &mut engine,
        &tables,
        program,
        hierarchy,
        default,
        refined,
        refinement,
        cuts,
        summaries,
    )?;

    // ---- Taint EDB ----
    let sourcemeth = engine.relation("SOURCEMETH", 1); // meth
    let sanitizermeth = engine.relation("SANITIZERMETH", 1); // meth
    let sinkmetharg = engine.relation("SINKMETHARG", 2); // meth, i

    // ---- Taint IDB ----
    let taintedvar = engine.relation("TAINTEDVAR", 3); // var, ctx, src
    let taintedfld = engine.relation("TAINTEDFLD", 4); // heap, hctx, fld, src
    let taintedglobal = engine.relation("TAINTEDGLOBAL", 2); // glob, src
    let leak = engine.relation("LEAK", 3); // src, invo, i

    let add = |engine: &mut Engine<'_>,
               rule: Result<crate::rule::Rule, RuleError>|
     -> Result<(), RuleError> { engine.add_rule(rule?) };

    add(
        &mut engine,
        RuleBuilder::new("t-source")
            .head(taintedvar, &["to", "callerCtx", "invo"])
            .pos(base.callgraph, &["invo", "callerCtx", "meth", "_"])
            .pos(sourcemeth, &["meth"])
            .pos(base.actualreturn, &["invo", "to"])
            .build(),
    )?;
    add(
        &mut engine,
        RuleBuilder::new("t-move")
            .head(taintedvar, &["to", "ctx", "src"])
            .pos(base.mov, &["to", "from"])
            .pos(taintedvar, &["from", "ctx", "src"])
            .build(),
    )?;
    add(
        &mut engine,
        RuleBuilder::new("t-arg")
            .head(taintedvar, &["to", "calleeCtx", "src"])
            .pos(base.callgraph, &["invo", "callerCtx", "meth", "calleeCtx"])
            .pos(base.formalarg, &["meth", "i", "to"])
            .pos(base.actualarg, &["invo", "i", "from"])
            .pos(taintedvar, &["from", "callerCtx", "src"])
            .build(),
    )?;
    add(
        &mut engine,
        RuleBuilder::new("t-ret")
            .head(taintedvar, &["to", "callerCtx", "src"])
            .pos(base.callgraph, &["invo", "callerCtx", "meth", "calleeCtx"])
            .pos(base.formalreturn, &["meth", "from"])
            .pos(base.actualreturn, &["invo", "to"])
            .pos(taintedvar, &["from", "calleeCtx", "src"])
            .neg(sanitizermeth, &["meth"])
            .build(),
    )?;
    add(
        &mut engine,
        RuleBuilder::new("t-this-v")
            .head(taintedvar, &["this", "calleeCtx", "src"])
            .pos(base.vcall, &["base", "_", "invo", "_"])
            .pos(base.callgraph, &["invo", "callerCtx", "meth", "calleeCtx"])
            .pos(base.thisvar, &["meth", "this"])
            .pos(taintedvar, &["base", "callerCtx", "src"])
            .build(),
    )?;
    add(
        &mut engine,
        RuleBuilder::new("t-this-s")
            .head(taintedvar, &["this", "calleeCtx", "src"])
            .pos(base.specialcall, &["base", "_", "invo", "_"])
            .pos(base.callgraph, &["invo", "callerCtx", "meth", "calleeCtx"])
            .pos(base.thisvar, &["meth", "this"])
            .pos(taintedvar, &["base", "callerCtx", "src"])
            .build(),
    )?;
    add(
        &mut engine,
        RuleBuilder::new("t-store")
            .head(taintedfld, &["baseH", "baseHCtx", "fld", "src"])
            .pos(base.store, &["base", "fld", "from"])
            .pos(taintedvar, &["from", "ctx", "src"])
            .pos(base.varpointsto, &["base", "ctx", "baseH", "baseHCtx"])
            .build(),
    )?;
    add(
        &mut engine,
        RuleBuilder::new("t-load")
            .head(taintedvar, &["to", "ctx", "src"])
            .pos(base.load, &["to", "base", "fld"])
            .pos(base.varpointsto, &["base", "ctx", "baseH", "baseHCtx"])
            .pos(taintedfld, &["baseH", "baseHCtx", "fld", "src"])
            .build(),
    )?;
    add(
        &mut engine,
        RuleBuilder::new("t-gstore")
            .head(taintedglobal, &["glob", "src"])
            .pos(base.sstore, &["glob", "from"])
            .pos(taintedvar, &["from", "_", "src"])
            .build(),
    )?;
    add(
        &mut engine,
        RuleBuilder::new("t-gload")
            .head(taintedvar, &["to", "ctx", "src"])
            .pos(base.sload, &["to", "glob", "inMeth"])
            .pos(base.reachable, &["inMeth", "ctx"])
            .pos(taintedglobal, &["glob", "src"])
            .build(),
    )?;
    add(
        &mut engine,
        RuleBuilder::new("t-leak")
            .head(leak, &["src", "invo", "i"])
            .pos(base.callgraph, &["invo", "callerCtx", "meth", "_"])
            .pos(sinkmetharg, &["meth", "i"])
            .pos(base.actualarg, &["invo", "i", "from"])
            .pos(taintedvar, &["from", "callerCtx", "src"])
            .build(),
    )?;

    // ---- Taint facts from the spec ----
    for &m in spec.sources() {
        engine.fact(sourcemeth, &[m.0]);
    }
    for &m in spec.sanitizers() {
        engine.fact(sanitizermeth, &[m.0]);
    }
    for (mid, method) in program.methods.iter() {
        for i in spec.sink_args(mid, method.params.len()) {
            engine.fact(sinkmetharg, &[mid.0, i]);
        }
    }

    let stats = engine.run()?;
    let mut leaks: Vec<(InvokeId, InvokeId, u32)> = engine
        .tuples(leak)
        .map(|t| (InvokeId(t[0]), InvokeId(t[1]), t[2]))
        .collect();
    leaks.sort_unstable();
    leaks.dedup();
    let tainted_var_tuples = engine.tuples(taintedvar).count();
    Ok(TaintModelResult {
        leaks,
        tainted_var_tuples,
        rounds: stats.rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rudoop_core::policy::Insensitive;
    use rudoop_ir::ProgramBuilder;

    #[test]
    fn sanitizer_blocks_and_direct_flow_leaks() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let kit = b.class("Kit", Some(obj));
        let src = b.method(kit, "input", &[], true);
        let sv = b.var(src, "v");
        b.alloc(src, sv, obj);
        b.ret(src, sv);
        let san = b.method(kit, "clean", &["x"], true);
        let sp = b.param(san, 0);
        b.ret(san, sp);
        let snk = b.method(kit, "exec", &["a"], true);
        let main = b.method(obj, "main", &[], true);
        let t = b.var(main, "t");
        let c = b.var(main, "c");
        b.scall(main, Some(t), src, &[]);
        b.scall(main, Some(c), san, &[t]);
        b.scall(main, None, snk, &[t]);
        b.scall(main, None, snk, &[c]);
        b.entry(main);
        let p = b.finish();
        let mut spec = TaintSpec::new();
        spec.add_source(src);
        spec.add_sanitizer(san);
        spec.add_sink(snk, Some(0));
        let hier = ClassHierarchy::new(&p);
        let refine = RefinementSet::refine_all(&p);
        let m = run_taint_model(&p, &hier, &spec, &Insensitive, &Insensitive, &refine).unwrap();
        assert_eq!(m.leaks.len(), 1, "only the unsanitized call leaks");
        assert!(m.tainted_var_tuples > 0);
    }
}
