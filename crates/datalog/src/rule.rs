//! The rule language: atoms, literals, external constructor functions, and
//! a fluent rule builder with named variables.
//!
//! A rule has one or more head atoms and a body of literals, evaluated left
//! to right:
//!
//! - a **positive atom** joins against a relation,
//! - a **negative atom** filters (all its variables must already be bound —
//!   the engine checks this safety condition when the rule is added),
//! - a **function literal** `f(args…) = result` invokes an external Rust
//!   function on bound arguments; if `result` is unbound it is bound to the
//!   return value, otherwise the call acts as an equality filter. This is
//!   how the points-to model's RECORD/MERGE context constructors are
//!   expressed, exactly as in the paper's Figure 3.

use std::collections::HashMap;
use std::fmt;

/// A column value. All data is interned to `u32` by the caller (IR ids and
/// context ids already are).
pub type Value = u32;

/// Identifies a relation within an [`crate::engine::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub(crate) usize);

/// Identifies an external function within an [`crate::engine::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncId(pub(crate) usize);

/// A term: a rule-local variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Term {
    /// Rule-local variable, numbered densely from 0.
    Var(u32),
    /// A constant value.
    Const(Value),
}

/// A relation applied to terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The relation.
    pub rel: RelId,
    /// One term per column.
    pub terms: Vec<Term>,
}

/// An external function application `func(args…) = result`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncApp {
    /// The function.
    pub func: FuncId,
    /// Argument terms (must be bound at evaluation time).
    pub args: Vec<Term>,
    /// Result term: bound → equality check, unbound variable → binding.
    pub result: Term,
}

/// One body literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Literal {
    /// Join against a relation.
    Pos(Atom),
    /// Stratified negation: succeeds if no matching tuple exists.
    Neg(Atom),
    /// External function call.
    Func(FuncApp),
}

/// A rule: `head₁, …, headₙ ← body₁, …, bodyₘ.`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Head atoms, all inferred when the body matches.
    pub heads: Vec<Atom>,
    /// Body literals, evaluated left to right.
    pub body: Vec<Literal>,
    /// Number of distinct variables.
    pub num_vars: u32,
    /// Optional name for diagnostics.
    pub name: String,
}

/// A rule construction error, reported by [`RuleBuilder::build`] or
/// [`crate::engine::Engine::add_rule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// A head variable is not bound by any positive atom or function result.
    UnboundHeadVar {
        /// Rule name.
        rule: String,
        /// Variable name.
        var: String,
    },
    /// A negated atom or function argument uses a variable not bound by an
    /// earlier positive atom or function result.
    UnboundAtUse {
        /// Rule name.
        rule: String,
        /// Variable name.
        var: String,
    },
    /// Atom arity differs from the relation's declared arity.
    ArityMismatch {
        /// Rule name.
        rule: String,
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Used arity.
        found: usize,
    },
    /// A rule head targets an EDB (fact-only) relation in a different
    /// stratum, creating unstratifiable negation.
    Unstratifiable {
        /// Relation name involved in the negative cycle.
        relation: String,
    },
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::UnboundHeadVar { rule, var } => {
                write!(
                    f,
                    "rule {rule}: head variable {var} is not bound by the body"
                )
            }
            RuleError::UnboundAtUse { rule, var } => {
                write!(
                    f,
                    "rule {rule}: variable {var} used in negation/function before binding"
                )
            }
            RuleError::ArityMismatch {
                rule,
                relation,
                expected,
                found,
            } => write!(
                f,
                "rule {rule}: relation {relation} has arity {expected}, used with {found}"
            ),
            RuleError::Unstratifiable { relation } => {
                write!(
                    f,
                    "negation through relation {relation} is not stratifiable"
                )
            }
        }
    }
}

impl std::error::Error for RuleError {}

/// Builds a [`Rule`] with human-readable variable names.
///
/// # Examples
///
/// ```
/// use rudoop_datalog::{Engine, RuleBuilder};
///
/// let mut engine = Engine::new();
/// let edge = engine.relation("edge", 2);
/// let path = engine.relation("path", 2);
/// let rule = RuleBuilder::new("transitive")
///     .head(path, &["x", "z"])
///     .pos(edge, &["x", "y"])
///     .pos(path, &["y", "z"])
///     .build()
///     .unwrap();
/// engine.add_rule(rule).unwrap();
/// ```
#[derive(Debug)]
pub struct RuleBuilder {
    name: String,
    vars: HashMap<String, u32>,
    var_names: Vec<String>,
    heads: Vec<Atom>,
    body: Vec<Literal>,
}

impl RuleBuilder {
    /// Starts a rule named `name` (diagnostics only).
    pub fn new(name: &str) -> Self {
        RuleBuilder {
            name: name.to_owned(),
            vars: HashMap::new(),
            var_names: Vec::new(),
            heads: Vec::new(),
            body: Vec::new(),
        }
    }

    fn term(&mut self, spec: &str) -> Term {
        // Leading '#' denotes a numeric constant, '_' a fresh wildcard.
        if let Some(num) = spec.strip_prefix('#') {
            return Term::Const(num.parse().expect("constant after '#' must be a number"));
        }
        if spec == "_" {
            let id = self.var_names.len() as u32;
            self.var_names.push(format!("_{id}"));
            return Term::Var(id);
        }
        if let Some(&id) = self.vars.get(spec) {
            return Term::Var(id);
        }
        let id = self.var_names.len() as u32;
        self.vars.insert(spec.to_owned(), id);
        self.var_names.push(spec.to_owned());
        Term::Var(id)
    }

    fn atom(&mut self, rel: RelId, terms: &[&str]) -> Atom {
        Atom {
            rel,
            terms: terms.iter().map(|t| self.term(t)).collect(),
        }
    }

    /// Adds a head atom.
    pub fn head(mut self, rel: RelId, terms: &[&str]) -> Self {
        let atom = self.atom(rel, terms);
        self.heads.push(atom);
        self
    }

    /// Adds a positive body atom.
    pub fn pos(mut self, rel: RelId, terms: &[&str]) -> Self {
        let atom = self.atom(rel, terms);
        self.body.push(Literal::Pos(atom));
        self
    }

    /// Adds a negated body atom.
    pub fn neg(mut self, rel: RelId, terms: &[&str]) -> Self {
        let atom = self.atom(rel, terms);
        self.body.push(Literal::Neg(atom));
        self
    }

    /// Adds a function literal `func(args…) = result`.
    pub fn func(mut self, func: FuncId, args: &[&str], result: &str) -> Self {
        let args = args.iter().map(|t| self.term(t)).collect();
        let result = self.term(result);
        self.body
            .push(Literal::Func(FuncApp { func, args, result }));
        self
    }

    /// Finishes the rule, checking the safety conditions.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError::UnboundHeadVar`] or [`RuleError::UnboundAtUse`]
    /// when a variable is used before any positive binding.
    pub fn build(self) -> Result<Rule, RuleError> {
        let n = self.var_names.len();
        let mut bound = vec![false; n];
        for lit in &self.body {
            match lit {
                Literal::Pos(atom) => {
                    for t in &atom.terms {
                        if let Term::Var(v) = t {
                            bound[*v as usize] = true;
                        }
                    }
                }
                Literal::Neg(atom) => {
                    for t in &atom.terms {
                        if let Term::Var(v) = t {
                            if !bound[*v as usize] {
                                return Err(RuleError::UnboundAtUse {
                                    rule: self.name,
                                    var: self.var_names[*v as usize].clone(),
                                });
                            }
                        }
                    }
                }
                Literal::Func(app) => {
                    for t in &app.args {
                        if let Term::Var(v) = t {
                            if !bound[*v as usize] {
                                return Err(RuleError::UnboundAtUse {
                                    rule: self.name,
                                    var: self.var_names[*v as usize].clone(),
                                });
                            }
                        }
                    }
                    if let Term::Var(v) = app.result {
                        bound[v as usize] = true;
                    }
                }
            }
        }
        for head in &self.heads {
            for t in &head.terms {
                if let Term::Var(v) = t {
                    if !bound[*v as usize] {
                        return Err(RuleError::UnboundHeadVar {
                            rule: self.name,
                            var: self.var_names[*v as usize].clone(),
                        });
                    }
                }
            }
        }
        Ok(Rule {
            heads: self.heads,
            body: self.body,
            num_vars: n as u32,
            name: self.name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_are_interned_per_rule() {
        let mut b = RuleBuilder::new("t");
        let t1 = b.term("x");
        let t2 = b.term("x");
        let t3 = b.term("y");
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
    }

    #[test]
    fn constants_and_wildcards() {
        let mut b = RuleBuilder::new("t");
        assert_eq!(b.term("#42"), Term::Const(42));
        let w1 = b.term("_");
        let w2 = b.term("_");
        assert_ne!(w1, w2, "wildcards are fresh each time");
    }

    #[test]
    fn unbound_head_var_is_rejected() {
        let rel = RelId(0);
        let err = RuleBuilder::new("bad")
            .head(rel, &["x"])
            .build()
            .unwrap_err();
        assert!(matches!(err, RuleError::UnboundHeadVar { .. }));
    }

    #[test]
    fn unbound_negation_var_is_rejected() {
        let rel = RelId(0);
        let err = RuleBuilder::new("bad")
            .head(rel, &["x"])
            .neg(rel, &["x"])
            .build()
            .unwrap_err();
        assert!(matches!(err, RuleError::UnboundAtUse { .. }));
    }

    #[test]
    fn function_results_bind() {
        let rel = RelId(0);
        let f = FuncId(0);
        let rule = RuleBuilder::new("ok")
            .head(rel, &["y"])
            .pos(rel, &["x"])
            .func(f, &["x"], "y")
            .build()
            .unwrap();
        assert_eq!(rule.heads.len(), 1);
        assert_eq!(rule.body.len(), 2);
    }
}
