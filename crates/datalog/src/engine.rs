//! Semi-naive, stratified Datalog evaluation with external functions.
//!
//! The engine stores relations as append-only tuple vectors (with a hash
//! set for deduplication), so a round's *delta* is simply a range of the
//! vector. Evaluation is textbook semi-naive: an initialization round
//! applies every rule to the full database, then each subsequent round
//! re-evaluates every rule once per body position held to the previous
//! round's delta. Joins use lazily built hash indexes over the bound
//! columns. Negation is stratified: relation strata are computed up front
//! and negative edges inside a recursive component are rejected.

use std::cell::RefCell;
use std::collections::HashMap;

use rudoop_core::hash::{FxHashMap, FxHashSet};

use crate::rule::{Atom, FuncId, Literal, RelId, Rule, RuleError, Term, Value};

/// Run statistics returned by [`Engine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Fixpoint rounds executed (across all strata).
    pub rounds: u64,
    /// Tuples derived by rules (beyond the initial facts).
    pub derived: u64,
}

struct Relation {
    name: String,
    arity: usize,
    tuples: Vec<Box<[Value]>>,
    set: FxHashSet<Box<[Value]>>,
    /// Start of the current delta within `tuples`.
    delta_start: usize,
    /// End of the current delta.
    delta_end: usize,
}

type Index = FxHashMap<Box<[Value]>, Vec<u32>>;

/// An external constructor function registered with [`Engine::function`].
type ExternFn<'a> = Box<dyn FnMut(&[Value]) -> Value + 'a>;

/// A Datalog engine. The lifetime `'a` bounds the external functions
/// registered with [`Engine::function`].
pub struct Engine<'a> {
    rels: Vec<Relation>,
    funcs: Vec<RefCell<ExternFn<'a>>>,
    func_names: Vec<String>,
    rules: Vec<Rule>,
    /// (relation, column mask) → (built_len, index).
    indexes: RefCell<HashMap<(usize, u64), (usize, Index)>>,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("relations", &self.rels.len())
            .field("rules", &self.rules.len())
            .field("functions", &self.func_names)
            .finish()
    }
}

impl Default for Engine<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> Engine<'a> {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Engine {
            rels: Vec::new(),
            funcs: Vec::new(),
            func_names: Vec::new(),
            rules: Vec::new(),
            indexes: RefCell::new(HashMap::new()),
        }
    }

    /// Declares a relation with the given arity.
    pub fn relation(&mut self, name: &str, arity: usize) -> RelId {
        let id = RelId(self.rels.len());
        self.rels.push(Relation {
            name: name.to_owned(),
            arity,
            tuples: Vec::new(),
            set: FxHashSet::default(),
            delta_start: 0,
            delta_end: 0,
        });
        id
    }

    /// Registers an external function (a context constructor in the
    /// points-to model).
    pub fn function<F: FnMut(&[Value]) -> Value + 'a>(&mut self, name: &str, f: F) -> FuncId {
        let id = FuncId(self.funcs.len());
        self.funcs.push(RefCell::new(Box::new(f)));
        self.func_names.push(name.to_owned());
        id
    }

    /// Inserts a base fact.
    ///
    /// # Panics
    ///
    /// Panics if the tuple arity does not match the relation.
    pub fn fact(&mut self, rel: RelId, tuple: &[Value]) {
        let r = &mut self.rels[rel.0];
        assert_eq!(tuple.len(), r.arity, "fact arity mismatch for {}", r.name);
        let boxed: Box<[Value]> = tuple.into();
        if r.set.insert(boxed.clone()) {
            r.tuples.push(boxed);
        }
    }

    /// Adds a rule after checking relation arities.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError::ArityMismatch`] on malformed atoms.
    pub fn add_rule(&mut self, rule: Rule) -> Result<(), RuleError> {
        for atom in rule
            .heads
            .iter()
            .chain(rule.body.iter().filter_map(|l| match l {
                Literal::Pos(a) | Literal::Neg(a) => Some(a),
                Literal::Func(_) => None,
            }))
        {
            let r = &self.rels[atom.rel.0];
            if atom.terms.len() != r.arity {
                return Err(RuleError::ArityMismatch {
                    rule: rule.name.clone(),
                    relation: r.name.clone(),
                    expected: r.arity,
                    found: atom.terms.len(),
                });
            }
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Number of tuples currently in `rel`.
    pub fn len(&self, rel: RelId) -> usize {
        self.rels[rel.0].tuples.len()
    }

    /// Whether `rel` is empty.
    pub fn is_empty(&self, rel: RelId) -> bool {
        self.rels[rel.0].tuples.is_empty()
    }

    /// Iterates over the tuples of `rel`.
    pub fn tuples(&self, rel: RelId) -> impl Iterator<Item = &[Value]> {
        self.rels[rel.0].tuples.iter().map(|t| &**t)
    }

    /// Whether `rel` contains `tuple`.
    pub fn contains(&self, rel: RelId, tuple: &[Value]) -> bool {
        self.rels[rel.0].set.contains(tuple)
    }

    /// Computes relation strata: `stratum(head) ≥ stratum(pos body)` and
    /// `stratum(head) > stratum(neg body)`.
    fn stratify(&self) -> Result<Vec<usize>, RuleError> {
        let n = self.rels.len();
        let mut stratum = vec![0usize; n];
        let bound = n + 1;
        loop {
            let mut changed = false;
            for rule in &self.rules {
                let mut body_req = 0usize;
                for lit in &rule.body {
                    match lit {
                        Literal::Pos(a) => body_req = body_req.max(stratum[a.rel.0]),
                        Literal::Neg(a) => body_req = body_req.max(stratum[a.rel.0] + 1),
                        Literal::Func(_) => {}
                    }
                }
                for head in &rule.heads {
                    if stratum[head.rel.0] < body_req {
                        stratum[head.rel.0] = body_req;
                        if body_req > bound {
                            return Err(RuleError::Unstratifiable {
                                relation: self.rels[head.rel.0].name.clone(),
                            });
                        }
                        changed = true;
                    }
                }
            }
            if !changed {
                return Ok(stratum);
            }
        }
    }

    /// Runs all rules to fixpoint.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError::Unstratifiable`] if negation occurs in a
    /// recursive cycle.
    pub fn run(&mut self) -> Result<RunStats, RuleError> {
        let stratum = self.stratify()?;
        let max_stratum = stratum.iter().copied().max().unwrap_or(0);
        // A rule runs in the stratum of its heads (all heads must agree,
        // which the stratification equations force for multi-head rules
        // sharing body requirements; we take the max to be safe).
        let rule_stratum: Vec<usize> = self
            .rules
            .iter()
            .map(|r| r.heads.iter().map(|h| stratum[h.rel.0]).max().unwrap_or(0))
            .collect();

        let mut stats = RunStats::default();
        for s in 0..=max_stratum {
            let rule_ids: Vec<usize> = (0..self.rules.len())
                .filter(|&i| rule_stratum[i] == s)
                .collect();
            if rule_ids.is_empty() {
                continue;
            }
            self.run_stratum(&rule_ids, &mut stats);
        }
        Ok(stats)
    }

    fn run_stratum(&mut self, rule_ids: &[usize], stats: &mut RunStats) {
        // Initialization round: naive evaluation of every rule.
        let mut pending: Vec<(RelId, Box<[Value]>)> = Vec::new();
        for &ri in rule_ids {
            let rule = &self.rules[ri];
            let mut env = vec![None; rule.num_vars as usize];
            self.eval_literal(rule, 0, None, &mut env, &mut pending);
        }
        stats.rounds += 1;
        let mut any = self.absorb(pending, stats);

        while any {
            let mut pending: Vec<(RelId, Box<[Value]>)> = Vec::new();
            for &ri in rule_ids {
                let rule = &self.rules[ri];
                // One evaluation per positive body atom whose relation has a
                // nonempty delta.
                for (li, lit) in rule.body.iter().enumerate() {
                    if let Literal::Pos(a) = lit {
                        let r = &self.rels[a.rel.0];
                        if r.delta_start < r.delta_end {
                            let mut env = vec![None; rule.num_vars as usize];
                            self.eval_literal(rule, 0, Some(li), &mut env, &mut pending);
                        }
                    }
                }
            }
            stats.rounds += 1;
            any = self.absorb(pending, stats);
        }
    }

    /// Moves pending tuples into their relations; returns whether any were
    /// new, and advances every delta window.
    fn absorb(&mut self, pending: Vec<(RelId, Box<[Value]>)>, stats: &mut RunStats) -> bool {
        for r in &mut self.rels {
            r.delta_start = r.tuples.len();
            r.delta_end = r.tuples.len();
        }
        let mut any = false;
        for (rel, tuple) in pending {
            let r = &mut self.rels[rel.0];
            if r.set.insert(tuple.clone()) {
                r.tuples.push(tuple);
                r.delta_end += 1;
                stats.derived += 1;
                any = true;
            }
        }
        // `pending` tuples for different relations interleave, so fix up the
        // windows: every relation's delta is everything past its start.
        for r in &mut self.rels {
            r.delta_end = r.tuples.len();
        }
        any
    }

    /// Recursive left-to-right join. `delta_pos` restricts that body
    /// position to the relation's delta window.
    fn eval_literal(
        &self,
        rule: &Rule,
        li: usize,
        delta_pos: Option<usize>,
        env: &mut Vec<Option<Value>>,
        pending: &mut Vec<(RelId, Box<[Value]>)>,
    ) {
        if li == rule.body.len() {
            for head in &rule.heads {
                let tuple: Box<[Value]> = head
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => *c,
                        Term::Var(v) => env[*v as usize].expect("checked by safety analysis"),
                    })
                    .collect();
                if !self.rels[head.rel.0].set.contains(&tuple) {
                    pending.push((head.rel, tuple));
                }
            }
            return;
        }
        match &rule.body[li] {
            Literal::Pos(atom) => {
                let use_delta = delta_pos == Some(li);
                self.scan_atom(atom, use_delta, env, &mut |env2| {
                    self.eval_literal(rule, li + 1, delta_pos, env2, pending);
                });
            }
            Literal::Neg(atom) => {
                let tuple: Vec<Value> = atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => *c,
                        Term::Var(v) => env[*v as usize].expect("safety-checked"),
                    })
                    .collect();
                if !self.rels[atom.rel.0].set.contains(tuple.as_slice()) {
                    self.eval_literal(rule, li + 1, delta_pos, env, pending);
                }
            }
            Literal::Func(app) => {
                let args: Vec<Value> = app
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => *c,
                        Term::Var(v) => env[*v as usize].expect("safety-checked"),
                    })
                    .collect();
                let value = (self.funcs[app.func.0].borrow_mut())(&args);
                match app.result {
                    Term::Const(c) => {
                        if c == value {
                            self.eval_literal(rule, li + 1, delta_pos, env, pending);
                        }
                    }
                    Term::Var(v) => match env[v as usize] {
                        Some(existing) => {
                            if existing == value {
                                self.eval_literal(rule, li + 1, delta_pos, env, pending);
                            }
                        }
                        None => {
                            env[v as usize] = Some(value);
                            self.eval_literal(rule, li + 1, delta_pos, env, pending);
                            env[v as usize] = None;
                        }
                    },
                }
            }
        }
    }

    /// Enumerates tuples of `atom`'s relation consistent with `env`,
    /// binding the atom's free variables for each and invoking `k`.
    fn scan_atom(
        &self,
        atom: &Atom,
        use_delta: bool,
        env: &mut Vec<Option<Value>>,
        k: &mut dyn FnMut(&mut Vec<Option<Value>>),
    ) {
        let rel = &self.rels[atom.rel.0];
        // Determine bound columns under env.
        let mut mask = 0u64;
        let mut key: Vec<Value> = Vec::new();
        for (i, t) in atom.terms.iter().enumerate() {
            let bound_val = match t {
                Term::Const(c) => Some(*c),
                Term::Var(v) => env[*v as usize],
            };
            if let Some(val) = bound_val {
                mask |= 1 << i;
                key.push(val);
            }
        }

        let try_tuple = |tuple: &[Value],
                         env: &mut Vec<Option<Value>>,
                         k: &mut dyn FnMut(&mut Vec<Option<Value>>)| {
            let mut newly_bound: Vec<u32> = Vec::new();
            let mut ok = true;
            for (i, t) in atom.terms.iter().enumerate() {
                match t {
                    Term::Const(c) => {
                        if tuple[i] != *c {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(v) => match env[*v as usize] {
                        Some(val) => {
                            if tuple[i] != val {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            env[*v as usize] = Some(tuple[i]);
                            newly_bound.push(*v);
                        }
                    },
                }
            }
            if ok {
                k(env);
            }
            for v in newly_bound {
                env[v as usize] = None;
            }
        };

        if use_delta {
            // Delta scans are short; match directly.
            for idx in rel.delta_start..rel.delta_end {
                let tuple = rel.tuples[idx].clone();
                try_tuple(&tuple, env, k);
            }
            return;
        }

        if mask == 0 {
            for idx in 0..rel.tuples.len() {
                let tuple = rel.tuples[idx].clone();
                try_tuple(&tuple, env, k);
            }
            return;
        }

        // Indexed scan on the bound columns.
        let matches: Vec<u32> = {
            let mut indexes = self.indexes.borrow_mut();
            let entry = indexes
                .entry((atom.rel.0, mask))
                .or_insert_with(|| (0, Index::default()));
            if entry.0 != rel.tuples.len() {
                let mut index = Index::default();
                for (ti, tuple) in rel.tuples.iter().enumerate() {
                    let k: Box<[Value]> = (0..atom.terms.len())
                        .filter(|i| mask & (1 << i) != 0)
                        .map(|i| tuple[i])
                        .collect();
                    index.entry(k).or_default().push(ti as u32);
                }
                *entry = (rel.tuples.len(), index);
            }
            entry.1.get(key.as_slice()).cloned().unwrap_or_default()
        };
        for ti in matches {
            let tuple = rel.tuples[ti as usize].clone();
            try_tuple(&tuple, env, k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleBuilder;

    #[test]
    fn transitive_closure() {
        let mut e = Engine::new();
        let edge = e.relation("edge", 2);
        let path = e.relation("path", 2);
        e.add_rule(
            RuleBuilder::new("base")
                .head(path, &["x", "y"])
                .pos(edge, &["x", "y"])
                .build()
                .unwrap(),
        )
        .unwrap();
        e.add_rule(
            RuleBuilder::new("step")
                .head(path, &["x", "z"])
                .pos(edge, &["x", "y"])
                .pos(path, &["y", "z"])
                .build()
                .unwrap(),
        )
        .unwrap();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            e.fact(edge, &[a, b]);
        }
        let stats = e.run().unwrap();
        assert_eq!(e.len(path), 6); // 12 13 14 23 24 34
        assert!(e.contains(path, &[1, 4]));
        assert!(!e.contains(path, &[4, 1]));
        assert!(stats.rounds >= 3, "chain of length 3 needs multiple rounds");
    }

    #[test]
    fn negation_on_lower_stratum() {
        let mut e = Engine::new();
        let node = e.relation("node", 1);
        let edge = e.relation("edge", 2);
        let has_out = e.relation("has_out", 1);
        let sink = e.relation("sink", 1);
        e.add_rule(
            RuleBuilder::new("has_out")
                .head(has_out, &["x"])
                .pos(edge, &["x", "_"])
                .build()
                .unwrap(),
        )
        .unwrap();
        e.add_rule(
            RuleBuilder::new("sink")
                .head(sink, &["x"])
                .pos(node, &["x"])
                .neg(has_out, &["x"])
                .build()
                .unwrap(),
        )
        .unwrap();
        for n in [1, 2, 3] {
            e.fact(node, &[n]);
        }
        e.fact(edge, &[1, 2]);
        e.fact(edge, &[2, 3]);
        e.run().unwrap();
        assert!(e.contains(sink, &[3]));
        assert_eq!(e.len(sink), 1);
    }

    #[test]
    fn unstratifiable_negation_is_rejected() {
        let mut e = Engine::new();
        let p = e.relation("p", 1);
        let q = e.relation("q", 1);
        e.add_rule(
            RuleBuilder::new("pq")
                .head(p, &["x"])
                .pos(q, &["x"])
                .neg(p, &["x"])
                .build()
                .unwrap(),
        )
        .unwrap();
        e.fact(q, &[1]);
        assert!(matches!(e.run(), Err(RuleError::Unstratifiable { .. })));
    }

    #[test]
    fn external_functions_bind_results() {
        let mut e = Engine::new();
        let input = e.relation("input", 1);
        let output = e.relation("output", 2);
        let double = e.function("double", |args: &[Value]| args[0] * 2);
        e.add_rule(
            RuleBuilder::new("dbl")
                .head(output, &["x", "y"])
                .pos(input, &["x"])
                .func(double, &["x"], "y")
                .build()
                .unwrap(),
        )
        .unwrap();
        e.fact(input, &[21]);
        e.run().unwrap();
        assert!(e.contains(output, &[21, 42]));
    }

    #[test]
    fn function_as_filter_when_result_bound() {
        let mut e = Engine::new();
        let pairs = e.relation("pairs", 2);
        let fixed = e.relation("fixed", 1);
        let ident = e.function("ident", |args: &[Value]| args[0]);
        // fixed(x) <- pairs(x, y), ident(x) = y.   (keeps only x == y)
        e.add_rule(
            RuleBuilder::new("fix")
                .head(fixed, &["x"])
                .pos(pairs, &["x", "y"])
                .func(ident, &["x"], "y")
                .build()
                .unwrap(),
        )
        .unwrap();
        e.fact(pairs, &[1, 1]);
        e.fact(pairs, &[1, 2]);
        e.run().unwrap();
        assert_eq!(e.len(fixed), 1);
        assert!(e.contains(fixed, &[1]));
    }

    #[test]
    fn multi_head_rules_infer_all_heads() {
        let mut e = Engine::new();
        let a = e.relation("a", 1);
        let b = e.relation("b", 1);
        let c = e.relation("c", 1);
        e.add_rule(
            RuleBuilder::new("both")
                .head(b, &["x"])
                .head(c, &["x"])
                .pos(a, &["x"])
                .build()
                .unwrap(),
        )
        .unwrap();
        e.fact(a, &[7]);
        e.run().unwrap();
        assert!(e.contains(b, &[7]));
        assert!(e.contains(c, &[7]));
    }

    #[test]
    fn constants_in_heads_and_bodies() {
        let mut e = Engine::new();
        let r = e.relation("r", 2);
        let s = e.relation("s", 1);
        // s(99) <- r(1, _).
        e.add_rule(
            RuleBuilder::new("k")
                .head(s, &["#99"])
                .pos(r, &["#1", "_"])
                .build()
                .unwrap(),
        )
        .unwrap();
        e.fact(r, &[2, 5]);
        e.run().unwrap();
        assert!(e.is_empty(s));
        e.fact(r, &[1, 5]);
        e.run().unwrap();
        assert!(e.contains(s, &[99]));
    }

    #[test]
    fn arity_mismatch_is_rejected_at_add_time() {
        let mut e = Engine::new();
        let r = e.relation("r", 2);
        let bad = RuleBuilder::new("bad")
            .head(r, &["x"])
            .pos(r, &["x", "y"])
            .build()
            .unwrap();
        assert!(matches!(
            e.add_rule(bad),
            Err(RuleError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn rerunning_after_new_facts_reaches_new_fixpoint() {
        let mut e = Engine::new();
        let edge = e.relation("edge", 2);
        let path = e.relation("path", 2);
        e.add_rule(
            RuleBuilder::new("b")
                .head(path, &["x", "y"])
                .pos(edge, &["x", "y"])
                .build()
                .unwrap(),
        )
        .unwrap();
        e.add_rule(
            RuleBuilder::new("s")
                .head(path, &["x", "z"])
                .pos(path, &["x", "y"])
                .pos(edge, &["y", "z"])
                .build()
                .unwrap(),
        )
        .unwrap();
        e.fact(edge, &[1, 2]);
        e.run().unwrap();
        assert_eq!(e.len(path), 1);
        e.fact(edge, &[2, 3]);
        e.run().unwrap();
        assert!(e.contains(path, &[1, 3]));
    }
}
