//! The paper's Figures 2–3, executable: the points-to analysis and
//! call-graph construction as Datalog rules over EDB relations extracted
//! from a [`Program`], with context constructors as external functions.
//!
//! This module is the *reference model*: it is evaluated with the generic
//! semi-naive engine, rule for rule as printed in the paper (plus the
//! static/special-call and entry-point rules that the paper's prose
//! delegates to "the full implementation"). The optimized solver in
//! `rudoop-core` is differential-tested against it.
//!
//! Deviation from the paper's letter, documented: our MERGE constructor
//! receives the resolved target method as an extra argument (the paper
//! keeps the `(invo, meth)` pair only in the SITETOREFINE guard). All three
//! classic flavors ignore the argument; it exists so the same
//! [`ContextPolicy`] objects drive both the model and the solver.

use std::cell::RefCell;
use std::rc::Rc;

use rudoop_core::context::{CtxId, CtxTables, HCtxId};
use rudoop_core::cutshortcut::{CutSummary, ParamCut};
use rudoop_core::policy::{ContextPolicy, RefinementSet};
use rudoop_core::summaries::{SummaryAtom, SummaryTable};
use rudoop_ir::{
    AllocId, ClassHierarchy, FieldId, Instruction, InvokeId, InvokeKind, MethodId, Program, VarId,
};

use crate::engine::Engine;
use crate::rule::{RelId, RuleBuilder, RuleError, Value};

/// The context-sensitive relations computed by the model.
#[derive(Debug, Clone, Default)]
pub struct ModelResult {
    /// VARPOINTSTO tuples.
    pub var_points_to: Vec<(VarId, CtxId, AllocId, HCtxId)>,
    /// FLDPOINTSTO tuples.
    pub field_points_to: Vec<(AllocId, HCtxId, FieldId, AllocId, HCtxId)>,
    /// CALLGRAPH tuples.
    pub call_graph: Vec<(InvokeId, CtxId, MethodId, CtxId)>,
    /// REACHABLE tuples.
    pub reachable: Vec<(MethodId, CtxId)>,
    /// The context tables used by the run (for rendering context strings).
    pub tables: CtxTables,
    /// Engine rounds (for curiosity/stats).
    pub rounds: u64,
}

impl ModelResult {
    /// Projected var-points-to: sorted, deduplicated `(var, heap)` pairs.
    pub fn var_points_to_projected(&self) -> Vec<(VarId, AllocId)> {
        let mut v: Vec<(VarId, AllocId)> = self
            .var_points_to
            .iter()
            .map(|&(var, _, heap, _)| (var, heap))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Projected call graph: sorted, deduplicated `(invoke, target)` pairs.
    pub fn call_graph_projected(&self) -> Vec<(InvokeId, MethodId)> {
        let mut v: Vec<(InvokeId, MethodId)> =
            self.call_graph.iter().map(|&(i, _, m, _)| (i, m)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Projected reachable methods, sorted and deduplicated.
    pub fn reachable_projected(&self) -> Vec<MethodId> {
        let mut v: Vec<MethodId> = self.reachable.iter().map(|&(m, _)| m).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Runs the Figure 2–3 model of `program` with `default`/`refined` context
/// constructors and the given refinement sets.
///
/// For a plain (non-introspective) analysis pass `RefinementSet::refine_all`
/// and make `refined` the analysis policy (the default is then never
/// consulted, because every element is refined) — or vice versa with the
/// complement. For a context-insensitive run pass two `Insensitive`
/// policies.
///
/// # Errors
///
/// Propagates [`RuleError`] from rule construction (a bug, not an input
/// condition — the rules are fixed).
pub fn run_model(
    program: &Program,
    hierarchy: &ClassHierarchy,
    default: &dyn ContextPolicy,
    refined: &dyn ContextPolicy,
    refinement: &RefinementSet,
) -> Result<ModelResult, RuleError> {
    run_model_extended(program, hierarchy, default, refined, refinement, None, None)
}

/// [`run_model`] with an optional cut-shortcut summary: cut parameters and
/// returns are excluded from the interprocedural-assignment rules and
/// replaced by the three shortcut rules, mirroring the optimized solver's
/// `cutshortcut` flavor. Passing `None` (or a summary with no cuts) leaves
/// every rule's behavior unchanged.
///
/// # Errors
///
/// Propagates [`RuleError`] from rule construction (a bug, not an input
/// condition — the rules are fixed).
pub fn run_model_with_cuts(
    program: &Program,
    hierarchy: &ClassHierarchy,
    default: &dyn ContextPolicy,
    refined: &dyn ContextPolicy,
    refinement: &RefinementSet,
    cuts: Option<&CutSummary>,
) -> Result<ModelResult, RuleError> {
    run_model_extended(program, hierarchy, default, refined, refinement, cuts, None)
}

/// [`run_model`] with an optional bottom-up summary table: return edges of
/// distilled methods are excluded from the interprocedural-assignment rules
/// and replaced by the four summary-instantiation rules, mirroring the
/// optimized solver's `summaries` flavor. Passing `None` (or a table with
/// no distilled methods) leaves every rule's behavior unchanged.
///
/// # Errors
///
/// Propagates [`RuleError`] from rule construction (a bug, not an input
/// condition — the rules are fixed).
pub fn run_model_with_summaries(
    program: &Program,
    hierarchy: &ClassHierarchy,
    default: &dyn ContextPolicy,
    refined: &dyn ContextPolicy,
    refinement: &RefinementSet,
    summaries: Option<&SummaryTable>,
) -> Result<ModelResult, RuleError> {
    run_model_extended(
        program, hierarchy, default, refined, refinement, None, summaries,
    )
}

/// The common body of the `run_model*` entry points. Cuts and summaries
/// are mutually exclusive in practice (`Flavor::prepare_config` clears
/// whichever the flavor does not use), but the installer composes them
/// soundly either way: each mechanism cuts a disjoint rule premise.
#[allow(clippy::too_many_arguments)]
fn run_model_extended(
    program: &Program,
    hierarchy: &ClassHierarchy,
    default: &dyn ContextPolicy,
    refined: &dyn ContextPolicy,
    refinement: &RefinementSet,
    cuts: Option<&CutSummary>,
    summaries: Option<&SummaryTable>,
) -> Result<ModelResult, RuleError> {
    let tables = Rc::new(RefCell::new(CtxTables::new()));
    let mut engine = Engine::new();
    let rels = install_base_model(
        &mut engine,
        &tables,
        program,
        hierarchy,
        default,
        refined,
        refinement,
        cuts,
        summaries,
    )?;
    let stats = engine.run()?;
    let mut result = extract_result(&engine, &rels, stats.rounds);
    drop(engine);
    result.tables = Rc::try_unwrap(tables).expect("engine dropped").into_inner();
    Ok(result)
}

/// The relation ids of the base (points-to) model that extension rule sets
/// — the taint client — join against.
pub(crate) struct BaseRels {
    pub(crate) mov: RelId,
    pub(crate) load: RelId,
    pub(crate) store: RelId,
    pub(crate) sload: RelId,
    pub(crate) sstore: RelId,
    pub(crate) vcall: RelId,
    pub(crate) specialcall: RelId,
    pub(crate) formalarg: RelId,
    pub(crate) actualarg: RelId,
    pub(crate) formalreturn: RelId,
    pub(crate) actualreturn: RelId,
    pub(crate) thisvar: RelId,
    pub(crate) entry: RelId,
    pub(crate) varpointsto: RelId,
    pub(crate) callgraph: RelId,
    pub(crate) fldpointsto: RelId,
    pub(crate) reachable: RelId,
}

/// Reads the computed relations out of a finished engine.
pub(crate) fn extract_result(engine: &Engine<'_>, rels: &BaseRels, rounds: u64) -> ModelResult {
    let mut result = ModelResult {
        rounds,
        ..ModelResult::default()
    };
    for t in engine.tuples(rels.varpointsto) {
        result
            .var_points_to
            .push((VarId(t[0]), CtxId(t[1]), AllocId(t[2]), HCtxId(t[3])));
    }
    for t in engine.tuples(rels.fldpointsto) {
        result.field_points_to.push((
            AllocId(t[0]),
            HCtxId(t[1]),
            FieldId(t[2]),
            AllocId(t[3]),
            HCtxId(t[4]),
        ));
    }
    for t in engine.tuples(rels.callgraph) {
        result
            .call_graph
            .push((InvokeId(t[0]), CtxId(t[1]), MethodId(t[2]), CtxId(t[3])));
    }
    for t in engine.tuples(rels.reachable) {
        result.reachable.push((MethodId(t[0]), CtxId(t[1])));
    }
    result
}

/// Declares the Figure 2–3 relations, context-constructor functions, rules
/// and program facts on `engine`, returning the relation handles extension
/// rule sets need.
#[allow(clippy::too_many_arguments)]
pub(crate) fn install_base_model<'a>(
    engine: &mut Engine<'a>,
    tables: &Rc<RefCell<CtxTables>>,
    program: &Program,
    hierarchy: &ClassHierarchy,
    default: &'a dyn ContextPolicy,
    refined: &'a dyn ContextPolicy,
    refinement: &RefinementSet,
    cuts: Option<&CutSummary>,
    summaries: Option<&SummaryTable>,
) -> Result<BaseRels, RuleError> {
    // ---- EDB relations (Figure 2's input relations) ----
    let alloc = engine.relation("ALLOC", 3); // var, heap, inMeth
    let mov = engine.relation("MOVE", 2); // to, from
    let load = engine.relation("LOAD", 3); // to, base, fld
    let store = engine.relation("STORE", 3); // base, fld, from
    let vcall = engine.relation("VCALL", 4); // base, sig, invo, inMeth
    let specialcall = engine.relation("SPECIALCALL", 4); // base, meth, invo, inMeth
    let staticcall = engine.relation("STATICCALL", 3); // meth, invo, inMeth
    let formalarg = engine.relation("FORMALARG", 3); // meth, i, arg
    let actualarg = engine.relation("ACTUALARG", 3); // invo, i, arg
    let formalreturn = engine.relation("FORMALRETURN", 2); // meth, ret
    let actualreturn = engine.relation("ACTUALRETURN", 2); // invo, var
    let thisvar = engine.relation("THISVAR", 2); // meth, this
    let heaptype = engine.relation("HEAPTYPE", 2); // heap, type
    let lookup = engine.relation("LOOKUP", 3); // type, sig, meth
    let sload = engine.relation("SLOAD", 3); // to, glob, inMeth
    let sstore = engine.relation("SSTORE", 2); // glob, from
    let sitetorefine = engine.relation("SITETOREFINE", 2); // invo, meth
    let objecttorefine = engine.relation("OBJECTTOREFINE", 1); // heap
    let entry = engine.relation("ENTRY", 1); // meth

    // ---- Cut-shortcut EDB (empty unless a `CutSummary` is supplied, in
    // which case the pre-analysis pass dictates every tuple) ----
    let callbase = engine.relation("CALLBASE", 2); // invo, base (receiver calls only)
    let cutparam = engine.relation("CUTPARAM", 2); // meth, i — arg edge cut
    let cutret = engine.relation("CUTRET", 2); // invo, meth — ret edge cut at this site
    let idparam = engine.relation("IDPARAM", 2); // meth, i — identity shortcut
    let setparam = engine.relation("SETPARAM", 3); // meth, i, fld — setter shortcut
    let getreturn = engine.relation("GETRETURN", 2); // meth, fld — getter shortcut

    // ---- Summary EDB (empty unless a `SummaryTable` is supplied, in
    // which case the bottom-up SCC pass dictates every tuple) ----
    let sumret = engine.relation("SUMRET", 2); // invo, meth — ret edge summarized
    let sumretparam = engine.relation("SUMRETPARAM", 3); // meth, srcMeth, i — ret = formal i of srcMeth
    let sumretfield = engine.relation("SUMRETFIELD", 2); // meth, fld — ret = this.fld
    let sumretalloc = engine.relation("SUMRETALLOC", 2); // meth, heap — ret = new heap
    let sumretglobal = engine.relation("SUMRETGLOBAL", 2); // meth, glob — ret = global

    // ---- IDB relations (Figure 2's computed relations) ----
    let varpointsto = engine.relation("VARPOINTSTO", 4); // var, ctx, heap, hctx
    let callgraph = engine.relation("CALLGRAPH", 4); // invo, callerCtx, meth, calleeCtx
    let fldpointsto = engine.relation("FLDPOINTSTO", 5); // baseH, baseHCtx, fld, heap, hctx
    let interprocassign = engine.relation("INTERPROCASSIGN", 4); // to, toCtx, from, fromCtx
    let reachable = engine.relation("REACHABLE", 2); // meth, ctx
    let globalpointsto = engine.relation("GLOBALPOINTSTO", 3); // glob, heap, hctx

    // ---- Context constructors (Figure 2's RECORD/MERGE and the refined
    // duplicates), closing over the shared context tables ----
    let t = tables.clone();
    let record = engine.function("RECORD", move |a: &[Value]| {
        default
            .record(&mut t.borrow_mut(), AllocId(a[0]), CtxId(a[1]))
            .0
    });
    let t = tables.clone();
    let record_refined = engine.function("RECORDREFINED", move |a: &[Value]| {
        refined
            .record(&mut t.borrow_mut(), AllocId(a[0]), CtxId(a[1]))
            .0
    });
    let t = tables.clone();
    let merge = engine.function("MERGE", move |a: &[Value]| {
        default
            .merge(
                &mut t.borrow_mut(),
                AllocId(a[0]),
                HCtxId(a[1]),
                InvokeId(a[2]),
                MethodId(a[3]),
                CtxId(a[4]),
            )
            .0
    });
    let t = tables.clone();
    let merge_refined = engine.function("MERGEREFINED", move |a: &[Value]| {
        refined
            .merge(
                &mut t.borrow_mut(),
                AllocId(a[0]),
                HCtxId(a[1]),
                InvokeId(a[2]),
                MethodId(a[3]),
                CtxId(a[4]),
            )
            .0
    });
    let t = tables.clone();
    let merge_static = engine.function("MERGESTATIC", move |a: &[Value]| {
        default
            .merge_static(
                &mut t.borrow_mut(),
                InvokeId(a[0]),
                MethodId(a[1]),
                CtxId(a[2]),
            )
            .0
    });
    let t = tables.clone();
    let merge_static_refined = engine.function("MERGESTATICREFINED", move |a: &[Value]| {
        refined
            .merge_static(
                &mut t.borrow_mut(),
                InvokeId(a[0]),
                MethodId(a[1]),
                CtxId(a[2]),
            )
            .0
    });

    // ---- Rules (Figure 3, in order) ----
    let add = |engine: &mut Engine<'_>,
               rule: Result<crate::rule::Rule, RuleError>|
     -> Result<(), RuleError> { engine.add_rule(rule?) };

    // INTERPROCASSIGN from arguments — except cut parameters, whose flow
    // is rerouted by the shortcut rules below.
    add(
        engine,
        RuleBuilder::new("interproc-args")
            .head(interprocassign, &["to", "calleeCtx", "from", "callerCtx"])
            .pos(callgraph, &["invo", "callerCtx", "meth", "calleeCtx"])
            .pos(formalarg, &["meth", "i", "to"])
            .pos(actualarg, &["invo", "i", "from"])
            .neg(cutparam, &["meth", "i"])
            .build(),
    )?;
    // INTERPROCASSIGN from returns — except getter returns at receiver
    // call sites (CUTRET is per (invo, meth): a baseless static call to a
    // getter keeps its return edge, exactly as the solver does) and
    // except distilled returns (SUMRET), which the four summary rules
    // below replace with caller-context-local instantiations.
    add(
        engine,
        RuleBuilder::new("interproc-ret")
            .head(interprocassign, &["to", "callerCtx", "from", "calleeCtx"])
            .pos(callgraph, &["invo", "callerCtx", "meth", "calleeCtx"])
            .pos(formalreturn, &["meth", "from"])
            .pos(actualreturn, &["invo", "to"])
            .neg(cutret, &["invo", "meth"])
            .neg(sumret, &["invo", "meth"])
            .build(),
    )?;
    // Cut-shortcut rules: each cut interprocedural flow is replaced by a
    // caller-context-local shortcut (the paper-adjacent "context
    // sensitivity without contexts" trick). Identity params jump the
    // actual straight to the call result; setter params store it into the
    // receiver's field; getter returns load the receiver's field into the
    // result. All three stay entirely in `callerCtx`.
    add(
        engine,
        RuleBuilder::new("shortcut-identity")
            .head(varpointsto, &["to", "callerCtx", "heap", "hctx"])
            .pos(callgraph, &["invo", "callerCtx", "meth", "_"])
            .pos(idparam, &["meth", "i"])
            .pos(actualarg, &["invo", "i", "from"])
            .pos(actualreturn, &["invo", "to"])
            .pos(varpointsto, &["from", "callerCtx", "heap", "hctx"])
            .build(),
    )?;
    add(
        engine,
        RuleBuilder::new("shortcut-setter")
            .head(fldpointsto, &["baseH", "baseHCtx", "fld", "heap", "hctx"])
            .pos(callgraph, &["invo", "callerCtx", "meth", "_"])
            .pos(setparam, &["meth", "i", "fld"])
            .pos(actualarg, &["invo", "i", "from"])
            .pos(callbase, &["invo", "base"])
            .pos(varpointsto, &["base", "callerCtx", "baseH", "baseHCtx"])
            .pos(varpointsto, &["from", "callerCtx", "heap", "hctx"])
            .build(),
    )?;
    add(
        engine,
        RuleBuilder::new("shortcut-getter")
            .head(varpointsto, &["to", "callerCtx", "heap", "hctx"])
            .pos(callgraph, &["invo", "callerCtx", "meth", "_"])
            .pos(getreturn, &["meth", "fld"])
            .pos(actualreturn, &["invo", "to"])
            .pos(callbase, &["invo", "base"])
            .pos(varpointsto, &["base", "callerCtx", "baseH", "baseHCtx"])
            .pos(fldpointsto, &["baseH", "baseHCtx", "fld", "heap", "hctx"])
            .build(),
    )?;
    // Summary-instantiation rules: a distilled callee's return edge is
    // replaced by one rule per summary-atom kind, each expanding the atom
    // at the call site. `ret = param i` reads the *formal* parameter of
    // the method the atom names (the summarized callee or, for atoms
    // inherited through composition, a transitive callee) — the union over
    // all call sites, never this site's actual alone, so summaries stay no
    // more precise than `2objH` where that flavor conflates sites — outer
    // or inner; `ret = this.fld` loads the field through
    // *this site's* receiver objects only (receiver calls — CALLBASE is
    // empty for static sites, exactly as the solver skips baseless field
    // atoms), which is where the precision over insensitivity comes from;
    // `ret = new h` materializes the allocation under the empty heap
    // context, matching what the all-empty `summaries` policy records;
    // `ret = global g` reads the context-insensitive global slot.
    add(
        engine,
        RuleBuilder::new("sum-ret-param")
            .head(varpointsto, &["to", "callerCtx", "heap", "hctx"])
            .pos(callgraph, &["invo", "callerCtx", "meth", "calleeCtx"])
            .pos(sumretparam, &["meth", "srcMeth", "i"])
            .pos(formalarg, &["srcMeth", "i", "from"])
            .pos(actualreturn, &["invo", "to"])
            // `calleeCtx` is sound for the source formal even when
            // `srcMeth != meth`: the summaries policy is context-free, so
            // every method runs under the single empty context.
            .pos(varpointsto, &["from", "calleeCtx", "heap", "hctx"])
            .build(),
    )?;
    add(
        engine,
        RuleBuilder::new("sum-ret-field")
            .head(varpointsto, &["to", "callerCtx", "heap", "hctx"])
            .pos(callgraph, &["invo", "callerCtx", "meth", "_"])
            .pos(sumretfield, &["meth", "fld"])
            .pos(actualreturn, &["invo", "to"])
            .pos(callbase, &["invo", "base"])
            .pos(varpointsto, &["base", "callerCtx", "baseH", "baseHCtx"])
            .pos(fldpointsto, &["baseH", "baseHCtx", "fld", "heap", "hctx"])
            .build(),
    )?;
    add(
        engine,
        RuleBuilder::new("sum-ret-alloc")
            .head(varpointsto, &["to", "callerCtx", "heap", "#0"])
            .pos(callgraph, &["invo", "callerCtx", "meth", "_"])
            .pos(sumretalloc, &["meth", "heap"])
            .pos(actualreturn, &["invo", "to"])
            .build(),
    )?;
    add(
        engine,
        RuleBuilder::new("sum-ret-global")
            .head(varpointsto, &["to", "callerCtx", "heap", "hctx"])
            .pos(callgraph, &["invo", "callerCtx", "meth", "_"])
            .pos(sumretglobal, &["meth", "glob"])
            .pos(actualreturn, &["invo", "to"])
            .pos(globalpointsto, &["glob", "heap", "hctx"])
            .build(),
    )?;
    // ALLOC, default context.
    add(
        engine,
        RuleBuilder::new("alloc")
            .head(varpointsto, &["var", "ctx", "heap", "hctx"])
            .pos(reachable, &["meth", "ctx"])
            .pos(alloc, &["var", "heap", "meth"])
            .neg(objecttorefine, &["heap"])
            .func(record, &["heap", "ctx"], "hctx")
            .build(),
    )?;
    // ALLOC, refined duplicate.
    add(
        engine,
        RuleBuilder::new("alloc-refined")
            .head(varpointsto, &["var", "ctx", "heap", "hctx"])
            .pos(reachable, &["meth", "ctx"])
            .pos(alloc, &["var", "heap", "meth"])
            .pos(objecttorefine, &["heap"])
            .func(record_refined, &["heap", "ctx"], "hctx")
            .build(),
    )?;
    // MOVE.
    add(
        engine,
        RuleBuilder::new("move")
            .head(varpointsto, &["to", "ctx", "heap", "hctx"])
            .pos(mov, &["to", "from"])
            .pos(varpointsto, &["from", "ctx", "heap", "hctx"])
            .build(),
    )?;
    // INTERPROCASSIGN propagation.
    add(
        engine,
        RuleBuilder::new("interproc-flow")
            .head(varpointsto, &["to", "toCtx", "heap", "hctx"])
            .pos(interprocassign, &["to", "toCtx", "from", "fromCtx"])
            .pos(varpointsto, &["from", "fromCtx", "heap", "hctx"])
            .build(),
    )?;
    // LOAD.
    add(
        engine,
        RuleBuilder::new("load")
            .head(varpointsto, &["to", "ctx", "heap", "hctx"])
            .pos(load, &["to", "base", "fld"])
            .pos(varpointsto, &["base", "ctx", "baseH", "baseHCtx"])
            .pos(fldpointsto, &["baseH", "baseHCtx", "fld", "heap", "hctx"])
            .build(),
    )?;
    // STORE.
    add(
        engine,
        RuleBuilder::new("store")
            .head(fldpointsto, &["baseH", "baseHCtx", "fld", "heap", "hctx"])
            .pos(store, &["base", "fld", "from"])
            .pos(varpointsto, &["from", "ctx", "heap", "hctx"])
            .pos(varpointsto, &["base", "ctx", "baseH", "baseHCtx"])
            .build(),
    )?;
    // VCALL, default and refined.
    add(
        engine,
        RuleBuilder::new("vcall")
            .head(reachable, &["toMeth", "calleeCtx"])
            .head(varpointsto, &["this", "calleeCtx", "heap", "hctx"])
            .head(callgraph, &["invo", "callerCtx", "toMeth", "calleeCtx"])
            .pos(vcall, &["base", "sig", "invo", "inMeth"])
            .pos(reachable, &["inMeth", "callerCtx"])
            .pos(varpointsto, &["base", "callerCtx", "heap", "hctx"])
            .pos(heaptype, &["heap", "heapT"])
            .pos(lookup, &["heapT", "sig", "toMeth"])
            .pos(thisvar, &["toMeth", "this"])
            .neg(sitetorefine, &["invo", "toMeth"])
            .func(
                merge,
                &["heap", "hctx", "invo", "toMeth", "callerCtx"],
                "calleeCtx",
            )
            .build(),
    )?;
    add(
        engine,
        RuleBuilder::new("vcall-refined")
            .head(reachable, &["toMeth", "calleeCtx"])
            .head(varpointsto, &["this", "calleeCtx", "heap", "hctx"])
            .head(callgraph, &["invo", "callerCtx", "toMeth", "calleeCtx"])
            .pos(vcall, &["base", "sig", "invo", "inMeth"])
            .pos(reachable, &["inMeth", "callerCtx"])
            .pos(varpointsto, &["base", "callerCtx", "heap", "hctx"])
            .pos(heaptype, &["heap", "heapT"])
            .pos(lookup, &["heapT", "sig", "toMeth"])
            .pos(thisvar, &["toMeth", "this"])
            .pos(sitetorefine, &["invo", "toMeth"])
            .func(
                merge_refined,
                &["heap", "hctx", "invo", "toMeth", "callerCtx"],
                "calleeCtx",
            )
            .build(),
    )?;
    // SPECIALCALL (statically bound receiver call), default and refined.
    add(
        engine,
        RuleBuilder::new("specialcall")
            .head(reachable, &["toMeth", "calleeCtx"])
            .head(varpointsto, &["this", "calleeCtx", "heap", "hctx"])
            .head(callgraph, &["invo", "callerCtx", "toMeth", "calleeCtx"])
            .pos(specialcall, &["base", "toMeth", "invo", "inMeth"])
            .pos(reachable, &["inMeth", "callerCtx"])
            .pos(varpointsto, &["base", "callerCtx", "heap", "hctx"])
            .pos(thisvar, &["toMeth", "this"])
            .neg(sitetorefine, &["invo", "toMeth"])
            .func(
                merge,
                &["heap", "hctx", "invo", "toMeth", "callerCtx"],
                "calleeCtx",
            )
            .build(),
    )?;
    add(
        engine,
        RuleBuilder::new("specialcall-refined")
            .head(reachable, &["toMeth", "calleeCtx"])
            .head(varpointsto, &["this", "calleeCtx", "heap", "hctx"])
            .head(callgraph, &["invo", "callerCtx", "toMeth", "calleeCtx"])
            .pos(specialcall, &["base", "toMeth", "invo", "inMeth"])
            .pos(reachable, &["inMeth", "callerCtx"])
            .pos(varpointsto, &["base", "callerCtx", "heap", "hctx"])
            .pos(thisvar, &["toMeth", "this"])
            .pos(sitetorefine, &["invo", "toMeth"])
            .func(
                merge_refined,
                &["heap", "hctx", "invo", "toMeth", "callerCtx"],
                "calleeCtx",
            )
            .build(),
    )?;
    // STATICCALL, default and refined.
    add(
        engine,
        RuleBuilder::new("staticcall")
            .head(reachable, &["toMeth", "calleeCtx"])
            .head(callgraph, &["invo", "callerCtx", "toMeth", "calleeCtx"])
            .pos(staticcall, &["toMeth", "invo", "inMeth"])
            .pos(reachable, &["inMeth", "callerCtx"])
            .neg(sitetorefine, &["invo", "toMeth"])
            .func(merge_static, &["invo", "toMeth", "callerCtx"], "calleeCtx")
            .build(),
    )?;
    add(
        engine,
        RuleBuilder::new("staticcall-refined")
            .head(reachable, &["toMeth", "calleeCtx"])
            .head(callgraph, &["invo", "callerCtx", "toMeth", "calleeCtx"])
            .pos(staticcall, &["toMeth", "invo", "inMeth"])
            .pos(reachable, &["inMeth", "callerCtx"])
            .pos(sitetorefine, &["invo", "toMeth"])
            .func(
                merge_static_refined,
                &["invo", "toMeth", "callerCtx"],
                "calleeCtx",
            )
            .build(),
    )?;
    // Static-field rules (part of Doop's "full implementation" rule set):
    // globals are single context-insensitive slots; a load materializes the
    // slot's contents in every reachable context of the loading method.
    add(
        engine,
        RuleBuilder::new("global-store")
            .head(globalpointsto, &["glob", "heap", "hctx"])
            .pos(sstore, &["glob", "from"])
            .pos(varpointsto, &["from", "_", "heap", "hctx"])
            .build(),
    )?;
    add(
        engine,
        RuleBuilder::new("global-load")
            .head(varpointsto, &["to", "ctx", "heap", "hctx"])
            .pos(sload, &["to", "glob", "inMeth"])
            .pos(reachable, &["inMeth", "ctx"])
            .pos(globalpointsto, &["glob", "heap", "hctx"])
            .build(),
    )?;
    // Entry points: reachable under the empty context (the paper's
    // REACHABLE seeding technicality).
    add(
        engine,
        RuleBuilder::new("entry")
            .head(reachable, &["meth", "#0"])
            .pos(entry, &["meth"])
            .build(),
    )?;

    // ---- Facts from the program ----
    load_facts(
        engine,
        program,
        hierarchy,
        refinement,
        Facts {
            alloc,
            sload,
            sstore,
            mov,
            load,
            store,
            vcall,
            specialcall,
            staticcall,
            formalarg,
            actualarg,
            formalreturn,
            actualreturn,
            thisvar,
            heaptype,
            lookup,
            sitetorefine,
            objecttorefine,
            entry,
        },
    );

    // ---- Cut-shortcut facts from the pre-analysis pass ----
    if let Some(cuts) = cuts {
        for (iid, inv) in program.invokes.iter() {
            match inv.kind {
                InvokeKind::Virtual { base, sig } => {
                    engine.fact(callbase, &[iid.0, base.0]);
                    // CUTRET pairs a call site with each plausible getter
                    // target (same-signature methods are exactly the
                    // dispatch range, mirroring SITETOREFINE's filter).
                    for (mid, method) in program.methods.iter() {
                        if method.sig == sig && cuts.getter_return(mid).is_some() {
                            engine.fact(cutret, &[iid.0, mid.0]);
                        }
                    }
                }
                InvokeKind::Special { base, target } => {
                    engine.fact(callbase, &[iid.0, base.0]);
                    if cuts.getter_return(target).is_some() {
                        engine.fact(cutret, &[iid.0, target.0]);
                    }
                }
                InvokeKind::Static { .. } => {}
            }
        }
        for (mid, method) in program.methods.iter() {
            for i in 0..method.params.len() {
                match cuts.param_cut(mid, i) {
                    Some(ParamCut::Identity) => {
                        engine.fact(cutparam, &[mid.0, i as Value]);
                        engine.fact(idparam, &[mid.0, i as Value]);
                    }
                    Some(ParamCut::Setter(field)) => {
                        engine.fact(cutparam, &[mid.0, i as Value]);
                        engine.fact(setparam, &[mid.0, i as Value, field.0]);
                    }
                    None => {}
                }
            }
            if let Some(field) = cuts.getter_return(mid) {
                engine.fact(getreturn, &[mid.0, field.0]);
            }
        }
    }

    // ---- Summary facts from the bottom-up SCC pass ----
    if let Some(table) = summaries {
        for (iid, inv) in program.invokes.iter() {
            match inv.kind {
                InvokeKind::Virtual { base, sig } => {
                    engine.fact(callbase, &[iid.0, base.0]);
                    // SUMRET pairs a call site with each plausible
                    // distilled target (same-signature methods are exactly
                    // the dispatch range, mirroring SITETOREFINE's filter);
                    // pairs outside CALLGRAPH never meet a rule.
                    for (mid, method) in program.methods.iter() {
                        if method.sig == sig && table.distilled_atoms(mid).is_some() {
                            engine.fact(sumret, &[iid.0, mid.0]);
                        }
                    }
                }
                InvokeKind::Special { base, target } => {
                    engine.fact(callbase, &[iid.0, base.0]);
                    if table.distilled_atoms(target).is_some() {
                        engine.fact(sumret, &[iid.0, target.0]);
                    }
                }
                // Unlike CUTRET, static sites do get SUMRET tuples: the
                // solver instantiates summaries at every call edge, with
                // only the receiver-field atoms skipped for baseless
                // sites (CALLBASE stays empty for them).
                InvokeKind::Static { target } => {
                    if table.distilled_atoms(target).is_some() {
                        engine.fact(sumret, &[iid.0, target.0]);
                    }
                }
            }
        }
        for mid in program.methods.ids() {
            let Some(atoms) = table.distilled_atoms(mid) else {
                continue;
            };
            for atom in atoms {
                match *atom {
                    SummaryAtom::ParamToRet(src, i) => {
                        engine.fact(sumretparam, &[mid.0, src.0, i as Value]);
                    }
                    SummaryAtom::ThisFieldToRet(field) => {
                        engine.fact(sumretfield, &[mid.0, field.0]);
                    }
                    SummaryAtom::AllocToRet(heap) => {
                        engine.fact(sumretalloc, &[mid.0, heap.0]);
                    }
                    SummaryAtom::GlobalToRet(glob) => {
                        engine.fact(sumretglobal, &[mid.0, glob.0]);
                    }
                }
            }
        }
    }

    Ok(BaseRels {
        mov,
        load,
        store,
        sload,
        sstore,
        vcall,
        specialcall,
        formalarg,
        actualarg,
        formalreturn,
        actualreturn,
        thisvar,
        entry,
        varpointsto,
        callgraph,
        fldpointsto,
        reachable,
    })
}

struct Facts {
    alloc: RelId,
    sload: RelId,
    sstore: RelId,
    mov: RelId,
    load: RelId,
    store: RelId,
    vcall: RelId,
    specialcall: RelId,
    staticcall: RelId,
    formalarg: RelId,
    actualarg: RelId,
    formalreturn: RelId,
    actualreturn: RelId,
    thisvar: RelId,
    heaptype: RelId,
    lookup: RelId,
    sitetorefine: RelId,
    objecttorefine: RelId,
    entry: RelId,
}

fn load_facts(
    engine: &mut Engine<'_>,
    program: &Program,
    hierarchy: &ClassHierarchy,
    refinement: &RefinementSet,
    f: Facts,
) {
    for (mid, method) in program.methods.iter() {
        if let Some(this) = method.this {
            engine.fact(f.thisvar, &[mid.0, this.0]);
        }
        for (i, &param) in method.params.iter().enumerate() {
            engine.fact(f.formalarg, &[mid.0, i as Value, param.0]);
        }
        if let Some(ret) = method.ret {
            engine.fact(f.formalreturn, &[mid.0, ret.0]);
        }
        for instr in &method.body {
            match *instr {
                Instruction::Alloc { var, alloc } => {
                    engine.fact(f.alloc, &[var.0, alloc.0, mid.0]);
                }
                Instruction::Move { to, from } | Instruction::Cast { to, from, .. } => {
                    engine.fact(f.mov, &[to.0, from.0]);
                }
                Instruction::Load { to, base, field } => {
                    engine.fact(f.load, &[to.0, base.0, field.0]);
                }
                Instruction::Store { base, field, from } => {
                    engine.fact(f.store, &[base.0, field.0, from.0]);
                }
                Instruction::LoadGlobal { to, global } => {
                    engine.fact(f.sload, &[to.0, global.0, mid.0]);
                }
                Instruction::StoreGlobal { global, from } => {
                    engine.fact(f.sstore, &[global.0, from.0]);
                }
                Instruction::Return { var } => {
                    if let Some(ret) = method.ret {
                        engine.fact(f.mov, &[ret.0, var.0]);
                    }
                }
                // Spawn emits the same call facts as Call: its call-graph
                // edges double as the thread-creation graph.
                Instruction::Call { invoke } | Instruction::Spawn { invoke } => {
                    let inv = &program.invokes[invoke];
                    for (i, &arg) in inv.args.iter().enumerate() {
                        engine.fact(f.actualarg, &[invoke.0, i as Value, arg.0]);
                    }
                    if let Some(result) = inv.result {
                        engine.fact(f.actualreturn, &[invoke.0, result.0]);
                    }
                    match inv.kind {
                        InvokeKind::Virtual { base, sig } => {
                            engine.fact(f.vcall, &[base.0, sig.0, invoke.0, mid.0]);
                        }
                        InvokeKind::Special { base, target } => {
                            engine.fact(f.specialcall, &[base.0, target.0, invoke.0, mid.0]);
                        }
                        InvokeKind::Static { target } => {
                            engine.fact(f.staticcall, &[target.0, invoke.0, mid.0]);
                        }
                    }
                }
                // Concurrency ordering/locking instructions carry no
                // points-to facts.
                Instruction::Join { .. }
                | Instruction::MonitorEnter { .. }
                | Instruction::MonitorExit { .. } => {}
            }
        }
    }
    for (aid, site) in program.allocs.iter() {
        engine.fact(f.heaptype, &[aid.0, site.class.0]);
    }
    for (cid, _) in program.classes.iter() {
        for (&sig, &meth) in hierarchy.dispatch_table(cid) {
            engine.fact(f.lookup, &[cid.0, sig.0, meth.0]);
        }
    }
    for &m in &program.entry_points {
        engine.fact(f.entry, &[m.0]);
    }
    // Refinement sets, converted from complement form to the model's
    // positive SITETOREFINE/OBJECTTOREFINE relations.
    for aid in program.allocs.ids() {
        if refinement.object_refined(aid) {
            engine.fact(f.objecttorefine, &[aid.0]);
        }
    }
    for iid in program.invokes.ids() {
        for mid in program.methods.ids() {
            // SITETOREFINE is conceptually over (invo, meth) pairs; only
            // pairs that can meet in a rule matter, but enumerating all is
            // simplest and correct for model-sized programs... except it is
            // quadratic. Restrict to plausible targets: any method is a
            // plausible target of a special/static call it names, and any
            // method in the dispatch range for virtual calls. Cheaper and
            // still sound: emit pairs only for methods that share a
            // signature with the call or are the static target.
            let plausible = match program.invokes[iid].kind {
                InvokeKind::Virtual { sig, .. } => program.methods[mid].sig == sig,
                InvokeKind::Special { target, .. } | InvokeKind::Static { target } => target == mid,
            };
            if plausible && refinement.site_refined(iid, mid) {
                engine.fact(f.sitetorefine, &[iid.0, mid.0]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rudoop_core::policy::{CallSiteSensitive, Insensitive, ObjectSensitive};
    use rudoop_ir::ProgramBuilder;

    fn identity_program() -> (Program, VarId, VarId, AllocId, AllocId) {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let id_m = b.method(obj, "id", &["x"], true);
        let xp = b.param(id_m, 0);
        b.ret(id_m, xp);
        let main = b.method(obj, "main", &[], true);
        let a = b.var(main, "a");
        let c = b.var(main, "c");
        let r1 = b.var(main, "r1");
        let r2 = b.var(main, "r2");
        let h1 = b.alloc(main, a, obj);
        let h2 = b.alloc(main, c, obj);
        b.scall(main, Some(r1), id_m, &[a]);
        b.scall(main, Some(r2), id_m, &[c]);
        b.entry(main);
        (b.finish(), r1, r2, h1, h2)
    }

    fn pts_of(result: &ModelResult, var: VarId) -> Vec<AllocId> {
        let mut v: Vec<AllocId> = result
            .var_points_to
            .iter()
            .filter(|&&(w, _, _, _)| w == var)
            .map(|&(_, _, h, _)| h)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn insensitive_model_conflates_identity() {
        let (p, r1, r2, h1, h2) = identity_program();
        let hier = ClassHierarchy::new(&p);
        let refine = RefinementSet::refine_all(&p);
        let m = run_model(&p, &hier, &Insensitive, &Insensitive, &refine).unwrap();
        assert_eq!(pts_of(&m, r1), vec![h1, h2]);
        assert_eq!(pts_of(&m, r2), vec![h1, h2]);
    }

    #[test]
    fn call_site_model_separates_identity() {
        let (p, r1, r2, h1, h2) = identity_program();
        let hier = ClassHierarchy::new(&p);
        let refine = RefinementSet::refine_all(&p);
        let m = run_model(
            &p,
            &hier,
            &Insensitive,
            &CallSiteSensitive::new(1, 0),
            &refine,
        )
        .unwrap();
        assert_eq!(pts_of(&m, r1), vec![h1]);
        assert_eq!(pts_of(&m, r2), vec![h2]);
    }

    #[test]
    fn virtual_dispatch_in_model() {
        let mut b = ProgramBuilder::new();
        let obj = b.class("Object", None);
        let a = b.class("A", Some(obj));
        let c = b.class("C", Some(obj));
        let m_a = b.method(a, "f", &[], false);
        let m_c = b.method(c, "f", &[], false);
        let main = b.method(obj, "main", &[], true);
        let x = b.var(main, "x");
        b.alloc(main, x, a);
        b.vcall(main, None, x, "f", &[]);
        b.entry(main);
        let p = b.finish();
        let hier = ClassHierarchy::new(&p);
        let refine = RefinementSet::refine_all(&p);
        let m = run_model(&p, &hier, &Insensitive, &Insensitive, &refine).unwrap();
        let reach = m.reachable_projected();
        assert!(reach.contains(&m_a));
        assert!(!reach.contains(&m_c));
    }

    #[test]
    fn refinement_guard_switches_constructors() {
        // With everything excluded from refinement, an "introspective"
        // model run with a precise refined policy behaves insensitively.
        let (p, r1, _r2, h1, h2) = identity_program();
        let hier = ClassHierarchy::new(&p);
        let mut refine = RefinementSet::refine_all(&p);
        for m in p.methods.ids() {
            refine.no_refine_methods.insert(m);
        }
        for a in p.allocs.ids() {
            refine.no_refine_objects.insert(a);
        }
        let m = run_model(
            &p,
            &hier,
            &Insensitive,
            &ObjectSensitive::new(2, 1),
            &refine,
        )
        .unwrap();
        assert_eq!(
            pts_of(&m, r1),
            vec![h1, h2],
            "default (insensitive) constructors used"
        );
    }
}
