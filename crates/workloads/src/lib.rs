//! # rudoop-workloads
//!
//! Synthetic, deterministic benchmark programs shaped like the DaCapo 2006
//! suite, for evaluating introspective context-sensitivity.
//!
//! The paper analyzes DaCapo through a Java bytecode frontend; this
//! workspace has no such frontend (see DESIGN.md's substitution table), so
//! this crate generates programs in the IL that reproduce what the
//! evaluation actually needs from DaCapo: a mostly well-behaved program
//! mass plus a small set of program elements whose context-sensitive cost
//! is disproportionate — conflated receiver populations for
//! object-sensitivity, deep call fan-in for call-site-sensitivity, class
//! populations for type-sensitivity.
//!
//! # Examples
//!
//! ```
//! use rudoop_workloads::dacapo;
//!
//! let program = dacapo::antlr().build();
//! assert!(program.instruction_count() > 500);
//! assert_eq!(rudoop_ir::validate(&program), Ok(()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dacapo;
pub mod patterns;
pub mod spec;
pub mod stdlib;

pub use spec::WorkloadSpec;
