//! Reusable IL generator components ("patterns"), each reproducing one
//! analysis-shape ingredient of the DaCapo benchmarks:
//!
//! - [`Pool`]: a registry/hub holding a large, cross-linked object
//!   population behind weak types — the reflective/configuration shape
//!   whose imprecision the paper's §1 cost model multiplies,
//! - [`wrapper_amplifier`]: conflated receiver populations created by
//!   conflated creator populations — the *object-sensitivity* cost
//!   amplifier (contexts ≈ wrapper sites × creator instances),
//! - [`util_chain`]: static utility methods with two-level call fan-in —
//!   the *call-site-sensitivity* cost amplifier (contexts ≈ consumers ×
//!   distributors),
//! - [`probes`]: controlled precision probes (a polymorphic call + a cast
//!   each) that context-sensitivity resolves, in three difficulty tiers:
//!   clean (every context flavor wins), medium (Heuristic A's thresholds
//!   exclude them, Heuristic B keeps them), heavy (routed through the hub:
//!   only the full analysis wins),
//! - [`event_bus`]: genuinely megamorphic dispatch (precision floor),
//! - [`app_mass`]: well-behaved application bulk.

use rudoop_ir::rng::SplitMix64;
use rudoop_ir::{ClassId, MethodId, ProgramBuilder, VarId};

use crate::stdlib::Std;

/// Handles to a built pool (registry hub).
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    /// The `Registry` class.
    pub registry: ClassId,
    /// `Registry.load() -> Object`: returns the full value population.
    pub load: MethodId,
    /// The registry instance variable in `main`.
    pub reg_var: VarId,
    /// Number of values stored.
    pub values: usize,
}

/// Builds a registry hub holding `values` objects spread over
/// `value_classes` classes, stored through `List` (so the population
/// conflates insensitively).
///
/// With `cross_link`, every value's `payload` field is made to point to the
/// whole population — giving each value a *max field points-to* of ≈
/// `values`, the signal metric #4 (and Heuristic A) keys on.
#[allow(clippy::too_many_arguments)]
pub fn pool(
    b: &mut ProgramBuilder,
    std: &Std,
    main: MethodId,
    prefix: &str,
    values: usize,
    value_classes: usize,
    cross_link: bool,
    readers: usize,
    rng: &mut SplitMix64,
) -> Pool {
    let registry = b.class(&format!("{prefix}Registry"), Some(std.object));
    let store = b.field(registry, "store");
    let load = b.method(registry, "load", &[], false);
    {
        let this = b.this(load);
        let s = b.var(load, "s");
        let r = b.var(load, "r");
        b.load(load, s, this, store);
        b.vcall(load, Some(r), s, "get", &[]);
        b.ret(load, r);
    }
    let set_store = b.method(registry, "set_store", &["l"], false);
    {
        let this = b.this(set_store);
        let l = b.param(set_store, 0);
        b.store(set_store, this, store, l);
    }

    // Value classes, each with a payload slot.
    let value_classes = value_classes.max(1);
    let payload_base = b.class(&format!("{prefix}Value"), Some(std.object));
    let payload = b.field(payload_base, "payload");
    let mut classes = Vec::with_capacity(value_classes);
    for i in 0..value_classes {
        classes.push(b.class(&format!("{prefix}Value{i}"), Some(payload_base)));
    }

    // Fillers: static methods (spread over a few source classes) that
    // allocate chunks of values into the shared list.
    let chunk = 25usize;
    let mut fillers = Vec::new();
    let n_fillers = values.div_ceil(chunk);
    let sources: Vec<ClassId> = (0..(n_fillers.div_ceil(8)).max(1))
        .map(|i| b.class(&format!("{prefix}Source{i}"), Some(std.object)))
        .collect();
    let mut remaining = values;
    for fi in 0..n_fillers {
        let src = sources[fi % sources.len()];
        let fill = b.method(src, &format!("fill{fi}"), &["l"], true);
        let l = b.param(fill, 0);
        let n = chunk.min(remaining);
        remaining -= n;
        // One representative `add` call plus one `get` per filler keeps the
        // collection API exercised; the bulk of the population goes in by
        // direct element stores. (One fat call site per ~25 values keeps
        // the *fraction* of cost-heavy call sites realistic — cf. the
        // paper's Figure 4, where the not-refined elements are a small
        // minority of the program.)
        let all = if cross_link {
            let all = b.var(fill, "all");
            b.vcall(fill, Some(all), l, "get", &[]);
            Some(all)
        } else {
            None
        };
        for j in 0..n {
            let v = b.var(fill, &format!("v{j}"));
            let class = classes[rng.below(classes.len())];
            b.alloc(fill, v, class);
            if j == 0 {
                b.vcall(fill, None, l, "add", &[v]);
            } else {
                b.store(fill, l, std.list_elem, v);
            }
            // Cross-link ~60% of the values: Heuristic A's object metric
            // (pointed-by-vars) is uniform across the conflated population,
            // but Heuristic B's cost-product only fires on values with fat
            // fields — partial linking reproduces the paper's Figure-4
            // pattern of B excluding fewer objects than A.
            if let Some(all) = all {
                if j % 5 < 3 {
                    b.store(fill, v, payload, all);
                }
            }
        }
        fillers.push(fill);
    }

    // Reader population: static methods holding `readers` variables that
    // each carry the whole population. Hubs in real programs are *popular*
    // — read by hundreds of variables — and Heuristic A's pointed-by-vars
    // cutoff (K = 100) is calibrated against exactly that popularity.
    let mut reader_methods = Vec::new();
    if readers > 0 {
        let reader_cls = b.class(&format!("{prefix}Readers"), Some(std.object));
        let per = 30usize;
        let mut left = readers;
        let mut mi = 0usize;
        while left > 0 {
            let m = b.method(reader_cls, &format!("scan{mi}"), &["l"], true);
            let l = b.param(m, 0);
            let first = b.var(m, "r0");
            b.vcall(m, Some(first), l, "get", &[]);
            let n = per.min(left);
            for k in 1..n {
                let r = b.var(m, &format!("r{k}"));
                b.mov(m, r, first);
            }
            left -= n;
            mi += 1;
            reader_methods.push(m);
        }
    }

    // Wire up in main.
    let reg_var = b.var(main, &format!("{prefix}_reg"));
    let list_var = b.var(main, &format!("{prefix}_pool_list"));
    b.alloc(main, reg_var, registry);
    b.alloc(main, list_var, std.list);
    b.vcall(main, None, reg_var, "set_store", &[list_var]);
    for fill in fillers {
        b.scall(main, None, fill, &[list_var]);
    }
    for reader in reader_methods {
        b.scall(main, None, reader, &[list_var]);
    }

    Pool {
        registry,
        load,
        reg_var,
        values,
    }
}

/// The object-sensitivity cost amplifier.
///
/// `creator_instances` creator objects (spread over `creator_classes`
/// classes) are conflated through a `List`; one megamorphic `make()` call
/// produces wrappers from `sites_per_class` allocation sites per creator
/// class; the wrappers are conflated again, and their `process(reg)` method
/// pulls the pool population through `steps` chained helper calls.
///
/// Under `2objH` the number of `process` contexts is ≈ (wrapper sites) ×
/// (creator instances per class), each carrying ≈ `steps × pool.values`
/// tuples; insensitively the cost is just `steps × pool.values`. Under
/// `2typeH` contexts collapse to (creator class, allocator class) *pairs*,
/// so the type-sensitivity knobs are `creator_classes` and
/// `allocator_classes` (the classes whose static methods allocate the
/// creator instances; `0` allocates them directly in `main`).
#[allow(clippy::too_many_arguments)]
pub fn wrapper_amplifier(
    b: &mut ProgramBuilder,
    std: &Std,
    main: MethodId,
    prefix: &str,
    pool: &Pool,
    wrapper_classes: usize,
    creator_classes: usize,
    creator_instances: usize,
    allocator_classes: usize,
    sites_per_class: usize,
    steps: usize,
    stateful: bool,
    rng: &mut SplitMix64,
) {
    // A dedicated collection class for this amplifier. Using the shared
    // `List` here would let the hub's cross-linking variables point at the
    // wrappers too (every `List.get` result conflates insensitively),
    // inflating the wrappers' pointed-by-vars/cost-product metrics and
    // letting Heuristic B neutralize the amplifier wholesale; a private
    // Bag keeps the wrappers' per-object metrics small and *diffuse*, which
    // is exactly the jython-style shape that defeats Heuristic B.
    let bag = b.class(&format!("{prefix}Bag"), Some(std.object));
    let bag_elem = b.field(bag, "bag_elem");
    let bag_add = b.method(bag, "add", &["x"], false);
    {
        let this = b.this(bag_add);
        let x = b.param(bag_add, 0);
        b.store(bag_add, this, bag_elem, x);
    }
    let bag_get = b.method(bag, "get", &[], false);
    {
        let this = b.this(bag_get);
        let r = b.var(bag_get, "r");
        b.load(bag_get, r, this, bag_elem);
        b.ret(bag_get, r);
    }

    // Wrapper classes: field state, method step (helper), method process.
    let wrapper_base = b.class(&format!("{prefix}Wrapper"), Some(std.object));
    let state = b.field(wrapper_base, "state");
    let mut wrappers = Vec::new();
    for i in 0..wrapper_classes.max(1) {
        let w = b.class(&format!("{prefix}Wrapper{i}"), Some(wrapper_base));
        let step = b.method(w, "step", &["a"], false);
        {
            let a = b.param(step, 0);
            let t = b.var(step, "t");
            if stateful {
                // Round-trip through the wrapper's state field: gives the
                // wrapper a fat field (total-field-points-to ≈ hub size),
                // which Heuristic B's object cost-product keys on.
                let this = b.this(step);
                b.store(step, this, state, a);
                b.load(step, t, this, state);
            } else {
                // Stateless: the wrapper's per-object metrics stay at zero,
                // so no heuristic can neutralize the amplifier through
                // object exclusion — the diffuse, jython-style shape.
                b.mov(step, t, a);
            }
            b.ret(step, t);
        }
        let process = b.method(w, "process", &["reg"], false);
        {
            let this = b.this(process);
            let reg = b.param(process, 0);
            let mut cur = b.var(process, "x0");
            b.vcall(process, Some(cur), reg, "load", &[]);
            for s in 1..=steps {
                let next = b.var(process, &format!("x{s}"));
                b.vcall(process, Some(next), this, "step", &[cur]);
                cur = next;
            }
            b.ret(process, cur);
        }
        wrappers.push(w);
    }

    // Creator classes with `make()` methods containing the wrapper sites.
    let mut creators = Vec::new();
    for c in 0..creator_classes.max(1) {
        let cc = b.class(&format!("{prefix}Creator{c}"), Some(std.object));
        let make = b.method(cc, "make", &[], false);
        let l = b.var(make, "l");
        b.alloc(make, l, bag);
        for s in 0..sites_per_class {
            let w = b.var(make, &format!("w{s}"));
            let class = wrappers[rng.below(wrappers.len())];
            b.alloc(make, w, class);
            if s == 0 {
                b.vcall(make, None, l, "add", &[w]);
            } else {
                b.store(make, l, bag_elem, w);
            }
        }
        b.ret(make, l);
        creators.push(cc);
    }

    // Wiring: conflate creators, megamorphic make, conflate wrappers,
    // drive process.
    let clist = b.var(main, &format!("{prefix}_creators"));
    b.alloc(main, clist, bag);
    if allocator_classes == 0 {
        for i in 0..creator_instances {
            let cv = b.var(main, &format!("{prefix}_c{i}"));
            b.alloc(main, cv, creators[i % creators.len()]);
            if i == 0 {
                b.vcall(main, None, clist, "add", &[cv]);
            } else {
                b.store(main, clist, bag_elem, cv);
            }
        }
    } else {
        // Creator instances are allocated in static methods of distinct
        // allocator classes: under type-sensitivity the creator's context
        // element becomes the allocator class, multiplying type contexts.
        let per = creator_instances.div_ceil(allocator_classes);
        let mut i = 0usize;
        for a in 0..allocator_classes {
            if i >= creator_instances {
                break;
            }
            let alloc_cls = b.class(&format!("{prefix}Allocator{a}"), Some(std.object));
            let batch = b.method(alloc_cls, "alloc_batch", &["cl"], true);
            let cl = b.param(batch, 0);
            for j in 0..per.min(creator_instances - i) {
                let cv = b.var(batch, &format!("c{j}"));
                b.alloc(batch, cv, creators[i % creators.len()]);
                if j == 0 {
                    b.vcall(batch, None, cl, "add", &[cv]);
                } else {
                    b.store(batch, cl, bag_elem, cv);
                }
                i += 1;
            }
            b.scall(main, None, batch, &[clist]);
        }
    }
    let gl = b.var(main, &format!("{prefix}_wrappers"));
    b.alloc(main, gl, bag);
    let cvx = b.var(main, &format!("{prefix}_cv"));
    b.vcall(main, Some(cvx), clist, "get", &[]);
    let wl = b.var(main, &format!("{prefix}_wl"));
    b.vcall(main, Some(wl), cvx, "make", &[]);
    let wtmp = b.var(main, &format!("{prefix}_wtmp"));
    b.vcall(main, Some(wtmp), wl, "get", &[]);
    b.vcall(main, None, gl, "add", &[wtmp]);
    let wv = b.var(main, &format!("{prefix}_wv"));
    b.vcall(main, Some(wv), gl, "get", &[]);
    b.vcall(main, None, wv, "process", &[pool.reg_var]);
}

/// The call-site-sensitivity cost amplifier.
///
/// `consumers` static methods each call a shared utility chain (depth
/// `chain`, `moves` locals per level) with the pool population as argument;
/// `dists` distributor methods each call every consumer. Under `2callH`
/// the head of the chain is analyzed in ≈ consumers × dists contexts, each
/// carrying the whole pool population; object- and type-sensitive analyses
/// leave static calls in the caller's (empty) context, so the pattern only
/// costs them the insensitive price.
#[allow(clippy::too_many_arguments)]
pub fn util_chain(
    b: &mut ProgramBuilder,
    std: &Std,
    main: MethodId,
    prefix: &str,
    pool: &Pool,
    consumers: usize,
    dists: usize,
    chain: usize,
    moves: usize,
) {
    let utils = b.class(&format!("{prefix}Utils"), Some(std.object));
    // Build the chain bottom-up so calls resolve to already-declared ids.
    // Deeper levels (`u1`…) take the value and copy it through `moves`
    // locals; the *head* (`u0`) takes the registry and pulls the whole hub
    // population before flowing it down. Loading inside the head keeps the
    // consumers thin: under 2callH the head is re-analyzed once per
    // (consumer call site, distributor call site) pair, each context
    // re-deriving the full population — while the head's insensitive
    // points-to *volume* is `(moves + 2) × population`, the exact quantity
    // Heuristic B thresholds on.
    let mut next: Option<MethodId> = None;
    for level in (1..chain.max(2)).rev() {
        let u = b.method(utils, &format!("u{level}"), &["a"], true);
        let a = b.param(u, 0);
        let mut cur = a;
        for m in 0..moves {
            let t = b.var(u, &format!("t{m}"));
            b.mov(u, t, cur);
            cur = t;
        }
        match next {
            Some(callee) => {
                let r = b.var(u, "r");
                b.scall(u, Some(r), callee, &[cur]);
                b.ret(u, r);
            }
            None => {
                b.ret(u, cur);
            }
        }
        next = Some(u);
    }
    let head = {
        let u = b.method(utils, "u0", &["reg"], true);
        let reg = b.param(u, 0);
        let mut cur = b.var(u, "x");
        b.vcall(u, Some(cur), reg, "load", &[]);
        for m in 0..moves {
            let t = b.var(u, &format!("t{m}"));
            b.mov(u, t, cur);
            cur = t;
        }
        match next {
            Some(callee) => {
                let r = b.var(u, "r");
                b.scall(u, Some(r), callee, &[cur]);
                b.ret(u, r);
            }
            None => {
                b.ret(u, cur);
            }
        }
        u
    };

    let consumer_cls = b.class(&format!("{prefix}Consumers"), Some(std.object));
    let mut consumer_methods = Vec::new();
    for j in 0..consumers {
        let cons = b.method(consumer_cls, &format!("cons{j}"), &["reg"], true);
        let reg = b.param(cons, 0);
        // ~40% of consumers retain the (hub-fat) result: those methods
        // acquire a fat metric #4, so Heuristic A stops refining their
        // call sites — the Figure-4 "call sites not refined" population.
        // The rest stay thin and remain refined.
        if j % 5 < 2 {
            let r = b.var(cons, "r");
            b.scall(cons, Some(r), head, &[reg]);
        } else {
            b.scall(cons, None, head, &[reg]);
        }
        consumer_methods.push(cons);
    }

    let dist_cls = b.class(&format!("{prefix}Dist"), Some(std.object));
    for d in 0..dists {
        let dist = b.method(dist_cls, &format!("dist{d}"), &["reg"], true);
        let reg = b.param(dist, 0);
        for &cons in &consumer_methods {
            b.scall(dist, None, cons, &[reg]);
        }
        b.scall(main, None, dist, &[pool.reg_var]);
    }
}

/// Tallies of the probes a builder emitted, for asserting chart shapes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeCounts {
    /// Probes every context-sensitive flavor should resolve.
    pub clean: usize,
    /// Probes Heuristic A abandons (fat in-flow) but Heuristic B keeps.
    pub medium: usize,
    /// Probes allocated in per-probe classes so even type-sensitivity
    /// separates them (a subset of `clean`).
    pub type_friendly: usize,
}

/// Emits precision probes. Each probe is one *pair* of identity-routed
/// values: insensitively the identity method's formal conflates the pair
/// (and every other probe's values), producing one spuriously polymorphic
/// `describe()` call and one spuriously failing cast per probe; a context-
/// sensitive analysis separates the pair per receiver (object-sensitivity),
/// per call site (call-site-sensitivity) and — for the `type_friendly`
/// probes, whose identity receivers are allocated in per-probe classes —
/// per allocator type.
///
/// `medium > 0` requires a medium-sized pool whose population size sits
/// between Heuristic A's in-flow cutoff and Heuristic B's volume cutoff.
#[allow(clippy::too_many_arguments)]
pub fn probes(
    b: &mut ProgramBuilder,
    std: &Std,
    main: MethodId,
    prefix: &str,
    clean: usize,
    type_friendly: usize,
    medium: usize,
    medium_pool: Option<&Pool>,
) -> ProbeCounts {
    let shape = b.class(&format!("{prefix}Shape"), Some(std.object));
    b.method(shape, "describe", &[], false);
    // A variant class whose `describe` drags two private helper methods
    // along: when an imprecise analysis spuriously dispatches to it, the
    // reachable-method count inflates by three — giving the evaluation's
    // second precision metric (reachable methods) a measurable delta.
    let variant = |b: &mut ProgramBuilder, name: String| -> ClassId {
        let cls = b.class(&name, Some(shape));
        let h1 = b.method(cls, "assemble", &[], false);
        {
            let t = b.var(h1, "t");
            b.alloc(h1, t, cls);
            b.ret(h1, t);
        }
        let h2 = b.method(cls, "finish", &["x"], false);
        {
            let x = b.param(h2, 0);
            b.ret(h2, x);
        }
        let d = b.method(cls, "describe", &[], false);
        {
            let this = b.this(d);
            let t = b.var(d, "t");
            b.vcall(d, Some(t), this, "assemble", &[]);
            let u = b.var(d, "u");
            b.vcall(d, Some(u), this, "finish", &[t]);
            b.ret(d, u);
        }
        cls
    };

    // Shared identity classes: one instance method (for object-sensitivity)
    // and one fat-armed variant (for the medium tier).
    let ident = b.class(&format!("{prefix}Ident"), Some(std.object));
    let make = b.method(ident, "make", &["p"], false);
    {
        let p = b.param(make, 0);
        b.ret(make, p);
    }
    let ident2 = b.class(&format!("{prefix}Ident2"), Some(std.object));
    let make2 = b.method(ident2, "make2", &["p", "noise"], false);
    {
        let p = b.param(make2, 0);
        b.ret(make2, p);
    }

    // One probe: two values of fresh variant classes routed through the
    // shared identity. Only the "a" side is observed (describe + cast);
    // the "b" side merely flows through the identity, so its variant
    // methods are reachable *only* through imprecision — which is exactly
    // what context-sensitivity removes.
    let emit_pair =
        |b: &mut ProgramBuilder, i: usize, tier: &str, ident_class: ClassId, fat: Option<VarId>| {
            let va_class = variant(b, format!("{prefix}{tier}A{i}"));
            let vb_class = variant(b, format!("{prefix}{tier}B{i}"));
            for (suffix, val_class, observed) in [("a", va_class, true), ("b", vb_class, false)] {
                let f = b.var(main, &format!("{prefix}{tier}_f{i}{suffix}"));
                b.alloc(main, f, ident_class);
                let v = b.var(main, &format!("{prefix}{tier}_v{i}{suffix}"));
                b.alloc(main, v, val_class);
                let r = b.var(main, &format!("{prefix}{tier}_r{i}{suffix}"));
                match fat {
                    None => {
                        b.vcall(main, Some(r), f, "make", &[v]);
                    }
                    Some(noise) => {
                        b.vcall(main, Some(r), f, "make2", &[v, noise]);
                    }
                }
                if observed {
                    b.vcall(main, None, r, "describe", &[]);
                    let c = b.var(main, &format!("{prefix}{tier}_c{i}{suffix}"));
                    b.cast(main, c, r, val_class);
                }
            }
        };

    for i in 0..clean {
        if i < type_friendly {
            // Per-(probe, side) allocator classes: each identity receiver
            // is allocated inside a method of its own class, so the two
            // sides differ in allocation site (object-sensitivity), call
            // site (call-site-sensitivity) *and* allocator class
            // (type-sensitivity).
            let va_class = variant(b, format!("{prefix}TclA{i}"));
            let vb_class = variant(b, format!("{prefix}TclB{i}"));
            for (suffix, val_class, observed) in [("a", va_class, true), ("b", vb_class, false)] {
                let alloc_cls = b.class(&format!("{prefix}TAlloc{i}{suffix}"), Some(std.object));
                let mk = b.method(alloc_cls, &format!("mk{i}{suffix}"), &[], true);
                let fv = b.var(mk, "fv");
                b.alloc(mk, fv, ident);
                b.ret(mk, fv);
                let f = b.var(main, &format!("{prefix}T_f{i}{suffix}"));
                b.scall(main, Some(f), mk, &[]);
                let v = b.var(main, &format!("{prefix}T_v{i}{suffix}"));
                b.alloc(main, v, val_class);
                let r = b.var(main, &format!("{prefix}T_r{i}{suffix}"));
                b.vcall(main, Some(r), f, "make", &[v]);
                if observed {
                    b.vcall(main, None, r, "describe", &[]);
                    let c = b.var(main, &format!("{prefix}T_c{i}{suffix}"));
                    b.cast(main, c, r, val_class);
                }
            }
        } else {
            emit_pair(b, i, "Cl", ident, None);
        }
    }

    if medium > 0 {
        let pool = medium_pool.expect("medium probes need a medium pool");
        let noise = b.var(main, &format!("{prefix}_noise"));
        b.vcall(main, Some(noise), pool.reg_var, "load", &[]);
        for i in 0..medium {
            emit_pair(b, i, "Md", ident2, Some(noise));
        }
    }

    ProbeCounts {
        clean,
        medium,
        type_friendly,
    }
}

/// A genuinely megamorphic event bus: `listeners` listener classes all
/// registered in one list, one dispatch call site. No context abstraction
/// can (or should) devirtualize it — it keeps the precision floor of every
/// analysis realistic.
pub fn event_bus(
    b: &mut ProgramBuilder,
    std: &Std,
    main: MethodId,
    prefix: &str,
    listeners: usize,
) {
    let listener = b.class(&format!("{prefix}Listener"), Some(std.object));
    b.method(listener, "handle", &["e"], false);
    let event = b.class(&format!("{prefix}Event"), Some(std.object));

    let ll = b.var(main, &format!("{prefix}_listeners"));
    b.alloc(main, ll, std.list);
    for i in 0..listeners {
        let cls = b.class(&format!("{prefix}Listener{i}"), Some(listener));
        b.method(cls, "handle", &["e"], false);
        let lv = b.var(main, &format!("{prefix}_l{i}"));
        b.alloc(main, lv, cls);
        b.vcall(main, None, ll, "add", &[lv]);
    }
    let ev = b.var(main, &format!("{prefix}_event"));
    b.alloc(main, ev, event);
    let cur = b.var(main, &format!("{prefix}_cur"));
    b.vcall(main, Some(cur), ll, "get", &[]);
    b.vcall(main, None, cur, "handle", &[ev]);
}

/// A visitor-pattern fragment (the pmd/bloat AST-walking shape): `nodes`
/// node classes each implementing `accept(v)` by double dispatch into one
/// of `kinds` visitor classes. The `accept` site is genuinely megamorphic
/// over node classes; the `visit` sites are megamorphic over visitors.
pub fn visitor(
    b: &mut ProgramBuilder,
    std: &Std,
    main: MethodId,
    prefix: &str,
    nodes: usize,
    kinds: usize,
) {
    let node_base = b.class(&format!("{prefix}Node"), Some(std.object));
    b.method(node_base, "accept", &["v"], false);
    let visitor_base = b.class(&format!("{prefix}Visitor"), Some(std.object));
    b.method(visitor_base, "visit", &["n"], false);

    let mut node_classes = Vec::new();
    for i in 0..nodes.max(1) {
        let cls = b.class(&format!("{prefix}Node{i}"), Some(node_base));
        let accept = b.method(cls, "accept", &["v"], false);
        let this = b.this(accept);
        let v = b.param(accept, 0);
        b.vcall(accept, None, v, "visit", &[this]);
        node_classes.push(cls);
    }
    for i in 0..kinds.max(1) {
        let cls = b.class(&format!("{prefix}Visitor{i}"), Some(visitor_base));
        let visit = b.method(cls, "visit", &["n"], false);
        let n = b.param(visit, 0);
        let echo = b.var(visit, "echo");
        b.mov(visit, echo, n);
    }

    // Drive: all nodes in a list, all visitors in a list, one dispatch.
    let nl = b.var(main, &format!("{prefix}_nodes"));
    b.alloc(main, nl, std.list);
    for (i, &cls) in node_classes.iter().enumerate() {
        let nv = b.var(main, &format!("{prefix}_n{i}"));
        b.alloc(main, nv, cls);
        if i == 0 {
            b.vcall(main, None, nl, "add", &[nv]);
        } else {
            b.store(main, nl, std.list_elem, nv);
        }
    }
    let vl = b.var(main, &format!("{prefix}_visitors"));
    b.alloc(main, vl, std.list);
    for i in 0..kinds.max(1) {
        let vv = b.var(main, &format!("{prefix}_v{i}"));
        // Reuse the class ids by index: visitors were declared after nodes.
        let cls = b
            .class_id(&format!("{prefix}Visitor{i}"))
            .expect("declared above");
        b.alloc(main, vv, cls);
        b.store(main, vl, std.list_elem, vv);
    }
    let cn = b.var(main, &format!("{prefix}_cn"));
    b.vcall(main, Some(cn), nl, "get", &[]);
    let cv = b.var(main, &format!("{prefix}_cv"));
    b.vcall(main, Some(cv), vl, "get", &[]);
    b.vcall(main, None, cn, "accept", &[cv]);
}

/// A decorator/stream chain (the java.io shape): `depth` wrapper objects
/// each holding the next stream in a field, with `read()` delegating
/// inward. Under object-sensitivity the inner `read` is analyzed once per
/// wrapper chain suffix — deep `this`-carried context chains.
pub fn streams(b: &mut ProgramBuilder, std: &Std, main: MethodId, prefix: &str, depth: usize) {
    let stream = b.class(&format!("{prefix}Stream"), Some(std.object));
    b.method(stream, "read", &[], false);
    let inner_f = b.field(stream, "inner");
    let chunk = b.class(&format!("{prefix}Chunk"), Some(std.object));

    let source = b.class(&format!("{prefix}Source"), Some(stream));
    let src_read = b.method(source, "read", &[], false);
    {
        let r = b.var(src_read, "r");
        b.alloc(src_read, r, chunk);
        b.ret(src_read, r);
    }
    let filter = b.class(&format!("{prefix}Filter"), Some(stream));
    let f_read = b.method(filter, "read", &[], false);
    {
        let this = b.this(f_read);
        let inner = b.var(f_read, "inner");
        b.load(f_read, inner, this, inner_f);
        let r = b.var(f_read, "r");
        b.vcall(f_read, Some(r), inner, "read", &[]);
        b.ret(f_read, r);
    }

    let mut cur = b.var(main, &format!("{prefix}_s0"));
    b.alloc(main, cur, source);
    for d in 1..=depth {
        let w = b.var(main, &format!("{prefix}_s{d}"));
        b.alloc(main, w, filter);
        b.store(main, w, inner_f, cur);
        cur = w;
    }
    let out = b.var(main, &format!("{prefix}_out"));
    b.vcall(main, Some(out), cur, "read", &[]);
}

/// Well-behaved application bulk: `classes` task classes, each with a
/// small object graph of its own (per-class Worker and Record helpers),
/// a `run()` that calls three helper methods, and a provably safe cast —
/// wired through a conflating task list (one megamorphic `run()` site)
/// plus `casts` always-failing casts to keep the cast metric's floor
/// realistic.
///
/// This bulk dominates the program's allocation-site and call-site counts,
/// so the cost-heavy hub/amplifier elements stay a small *fraction* of the
/// program — the precondition for Figure-4-like refinement percentages.
pub fn app_mass(
    b: &mut ProgramBuilder,
    std: &Std,
    main: MethodId,
    prefix: &str,
    classes: usize,
    casts: usize,
) {
    let task = b.class(&format!("{prefix}Task"), Some(std.object));
    b.method(task, "run", &[], false);
    let out = b.field(task, "out");
    let worker_base = b.class(&format!("{prefix}Worker"), Some(std.object));
    let item = b.field(worker_base, "item");
    // A shared configuration object published through a static field —
    // the idiomatic Java singleton, exercising the global-flow rules.
    let config_cls = b.class(&format!("{prefix}Config"), Some(std.object));
    b.method(config_cls, "touch", &[], false);
    let config_global = b.global(config_cls, "instance");
    // Private task collection: the application bulk must not join the
    // hub's conflated population, or its (many) objects would inherit the
    // hub's popularity and blur the Figure-4 object percentages.
    let tasklist = b.class(&format!("{prefix}TaskList"), Some(std.object));
    let tl_elem = b.field(tasklist, "tl_elem");
    let tl_add = b.method(tasklist, "add", &["x"], false);
    {
        let this = b.this(tl_add);
        let x = b.param(tl_add, 0);
        b.store(tl_add, this, tl_elem, x);
    }
    let tl_get = b.method(tasklist, "get", &[], false);
    {
        let this = b.this(tl_get);
        let r = b.var(tl_get, "r");
        b.load(tl_get, r, this, tl_elem);
        b.ret(tl_get, r);
    }

    let cfg_var = b.var(main, &format!("{prefix}_config"));
    b.alloc(main, cfg_var, config_cls);
    b.store_global(main, config_global, cfg_var);
    let tl = b.var(main, &format!("{prefix}_tasks"));
    b.alloc(main, tl, tasklist);
    for i in 0..classes {
        let cls = b.class(&format!("{prefix}Task{i}"), Some(task));
        let worker_cls = b.class(&format!("{prefix}Worker{i}"), Some(worker_base));
        let record_cls = b.class(&format!("{prefix}Record{i}"), Some(std.object));

        // Worker.prepare(): allocate and stash a private record.
        let prepare = b.method(worker_cls, "prepare", &[], false);
        {
            let this = b.this(prepare);
            let rec = b.var(prepare, "rec");
            b.alloc(prepare, rec, record_cls);
            b.store(prepare, this, item, rec);
            b.ret(prepare, rec);
        }
        // Worker.fetch(): read it back, provably of the record class.
        let fetch = b.method(worker_cls, "fetch", &[], false);
        {
            let this = b.this(fetch);
            let got = b.var(fetch, "got");
            b.load(fetch, got, this, item);
            let cast = b.var(fetch, "cast");
            b.cast(fetch, cast, got, record_cls);
            b.ret(fetch, cast);
        }
        // Task.run(): read the shared config through its static field,
        // drive two private workers; stash a private String.
        // (No shared StringBuilder here: its `buf` field conflates across
        // every user insensitively, which would push metric #4 past
        // Heuristic A's cutoff for every task class — real analyses treat
        // string builders with special-case heuristics for this reason.)
        let run = b.method(cls, "run", &[], false);
        {
            let this = b.this(run);
            let cfg = b.var(run, "cfg");
            b.load_global(run, cfg, config_global);
            b.vcall(run, None, cfg, "touch", &[]);
            let w1 = b.var(run, "w1");
            b.alloc(run, w1, worker_cls);
            let w2 = b.var(run, "w2");
            b.alloc(run, w2, worker_cls);
            b.vcall(run, None, w1, "prepare", &[]);
            b.vcall(run, None, w2, "prepare", &[]);
            let got = b.var(run, "got");
            b.vcall(run, Some(got), w1, "fetch", &[]);
            let g2 = b.var(run, "g2");
            b.vcall(run, Some(g2), w2, "fetch", &[]);
            let s = b.var(run, "s");
            b.alloc(run, s, std.string);
            b.store(run, this, out, s);
            let r = b.var(run, "r");
            b.load(run, r, this, out);
            let c = b.var(run, "c");
            b.cast(run, c, r, std.string);
        }
        let tv = b.var(main, &format!("{prefix}_t{i}"));
        b.alloc(main, tv, cls);
        if i % 8 == 0 {
            b.vcall(main, None, tl, "add", &[tv]);
        } else {
            b.store(main, tl, tl_elem, tv);
        }
        // Most tasks are also driven directly (monomorphic, well-behaved
        // call sites), not only through the conflated list.
        b.vcall(main, None, tv, "run", &[]);
    }
    let cur = b.var(main, &format!("{prefix}_cur"));
    b.vcall(main, Some(cur), tl, "get", &[]);
    b.vcall(main, None, cur, "run", &[]);
    // Always-failing casts: task-list elements cast to String.
    for i in 0..casts {
        let c = b.var(main, &format!("{prefix}_cast{i}"));
        b.cast(main, c, cur, std.string);
    }
}

/// The taint-bearing fragment: a `{prefix}Kit` class with `source` /
/// `sanitize` / `sink` static methods plus `flows` repetitions of a fixed
/// battery of flow shapes in `main`:
///
/// 1. a direct source→sink leak,
/// 2. a sanitized flow (no leak),
/// 3. a *sanitizer bypass via aliasing* — the tainted value is sanitized,
///    but an alias of it reaches the sink through a `{prefix}Box` field,
/// 4. a *context-merge probe* — two `{prefix}Wrap` instances pass a tainted
///    and a clean value through the same box-allocating method; only a
///    heap-context-merging analysis (insensitive, or introspectively
///    collapsed) reports the clean path as a leak,
/// 5. a *dead sanitizer* — a sanitizer call whose argument is never
///    tainted.
///
/// The matching spec is
/// [`WorkloadSpec::taint_spec`](crate::WorkloadSpec::taint_spec).
pub fn taint_kit(b: &mut ProgramBuilder, std: &Std, main: MethodId, prefix: &str, flows: usize) {
    let kit = b.class(&format!("{prefix}Kit"), Some(std.object));
    let source = b.method(kit, "source", &[], true);
    {
        let v = b.var(source, "v");
        b.alloc(source, v, kit);
        b.ret(source, v);
    }
    let sanitize = b.method(kit, "sanitize", &["x"], true);
    {
        let x = b.param(sanitize, 0);
        b.ret(sanitize, x);
    }
    let sink = b.method(kit, "sink", &["x"], true);

    let box_cls = b.class(&format!("{prefix}Box"), Some(std.object));
    let box_val = b.field(box_cls, "val");
    let box_set = b.method(box_cls, "set", &["x"], false);
    {
        let this = b.this(box_set);
        let x = b.param(box_set, 0);
        b.store(box_set, this, box_val, x);
    }
    let box_get = b.method(box_cls, "get", &[], false);
    {
        let this = b.this(box_get);
        let r = b.var(box_get, "r");
        b.load(box_get, r, this, box_val);
        b.ret(box_get, r);
    }
    // Wrap.pass(x): round-trip x through a Box allocated *here*, so the
    // box's heap context is the wrapper instance — separable by an
    // object-sensitive heap, merged by an insensitive one.
    let wrap_cls = b.class(&format!("{prefix}Wrap"), Some(std.object));
    let pass = b.method(wrap_cls, "pass", &["x"], false);
    {
        let x = b.param(pass, 0);
        let bx = b.var(pass, "bx");
        let out = b.var(pass, "out");
        b.alloc(pass, bx, box_cls);
        b.vcall(pass, None, bx, "set", &[x]);
        b.vcall(pass, Some(out), bx, "get", &[]);
        b.ret(pass, out);
    }

    for k in 0..flows {
        // 1. Direct leak.
        let t = b.var(main, &format!("{prefix}_t{k}"));
        b.scall(main, Some(t), source, &[]);
        b.scall(main, None, sink, &[t]);
        // 2. Sanitized flow: clean by construction.
        let c = b.var(main, &format!("{prefix}_c{k}"));
        b.scall(main, Some(c), sanitize, &[t]);
        b.scall(main, None, sink, &[c]);
        // 3. Alias bypass: sanitize one name, leak the aliased heap cell.
        let bx = b.var(main, &format!("{prefix}_bx{k}"));
        let alias = b.var(main, &format!("{prefix}_al{k}"));
        let got = b.var(main, &format!("{prefix}_got{k}"));
        b.alloc(main, bx, box_cls);
        b.vcall(main, None, bx, "set", &[t]);
        b.mov(main, alias, bx);
        b.vcall(main, Some(got), alias, "get", &[]);
        b.scall(main, None, sink, &[got]);
        // 4. Context-merge probe: leaks only under a merged heap context.
        let w1 = b.var(main, &format!("{prefix}_w1_{k}"));
        let w2 = b.var(main, &format!("{prefix}_w2_{k}"));
        let clean = b.var(main, &format!("{prefix}_cl{k}"));
        let r1 = b.var(main, &format!("{prefix}_r1_{k}"));
        let r2 = b.var(main, &format!("{prefix}_r2_{k}"));
        b.alloc(main, w1, wrap_cls);
        b.alloc(main, w2, wrap_cls);
        b.alloc(main, clean, std.object);
        b.vcall(main, Some(r1), w1, "pass", &[t]);
        b.vcall(main, Some(r2), w2, "pass", &[clean]);
        b.scall(main, None, sink, &[r2]);
        // 5. Dead sanitizer: nothing tainted ever reaches it.
        let d = b.var(main, &format!("{prefix}_d{k}"));
        let e = b.var(main, &format!("{prefix}_e{k}"));
        b.alloc(main, d, std.object);
        b.scall(main, Some(e), sanitize, &[d]);
        b.scall(main, None, sink, &[e]);
    }
    let _ = sink;
}

/// The concurrency-bearing fragment: `threads` repetitions of a fixed
/// battery of thread shapes in `main`, each exercising one corner of the
/// race client:
///
/// 1. **spawn farm** — `{prefix}FarmWorker` threads, each writing only its
///    own freshly-allocated state: threads exist, nothing is shared, no
///    races (the EXEC/thread-enumeration baseline),
/// 2. **shared counter** — `{prefix}CountWorker` threads all writing one
///    `{prefix}Counter.hits` unguarded: a real write–write race, plus a
///    cross-thread escape of the counter,
/// 3. **guarded cache** — `{prefix}CacheWorker` threads writing one
///    `{prefix}Cache.val` under one shared lock object: the singleton
///    must-alias lock excludes the race,
/// 4. **lock ladder** — `{prefix}LadderWorker` threads taking an outer
///    lock, then *calling into* a step method that takes an inner lock
///    around the access: the outer lock reaches the access only through
///    the interprocedural must-lock fixpoint,
/// 5. **joined writer** — a spawn immediately followed by `join` and a
///    write to the same `{prefix}JoinCell.slot` the thread wrote: ordered
///    by the join, so not a race.
///
/// Under an object-sensitive heap each `{prefix}CountWorker` spawn's
/// receiver is separable; the shapes are sized so races appear (or not)
/// identically across context flavors except where contexts genuinely
/// decide — the differential suite leans on that.
pub fn concurrency_kit(
    b: &mut ProgramBuilder,
    std: &Std,
    main: MethodId,
    prefix: &str,
    threads: usize,
) {
    if threads == 0 {
        return;
    }

    // 1. Spawn farm: private state per thread.
    let farm = b.class(&format!("{prefix}FarmWorker"), Some(std.object));
    let fstate = b.field(farm, "state");
    let frun = b.method(farm, "run", &[], false);
    {
        let this = b.this(frun);
        let v = b.var(frun, "v");
        b.alloc(frun, v, std.object);
        b.store(frun, this, fstate, v);
    }

    // 2. Shared counter: unguarded conflicting writes.
    let counter = b.class(&format!("{prefix}Counter"), Some(std.object));
    let hits = b.field(counter, "hits");
    let cworker = b.class(&format!("{prefix}CountWorker"), Some(std.object));
    let cfld = b.field(cworker, "c");
    let crun = b.method(cworker, "run", &[], false);
    {
        let this = b.this(crun);
        let rc = b.var(crun, "rc");
        let rv = b.var(crun, "rv");
        b.load(crun, rc, this, cfld);
        b.alloc(crun, rv, std.object);
        b.store(crun, rc, hits, rv);
    }

    // 3. Guarded cache: same sharing shape, one common lock.
    let cache = b.class(&format!("{prefix}Cache"), Some(std.object));
    let val = b.field(cache, "val");
    let gworker = b.class(&format!("{prefix}CacheWorker"), Some(std.object));
    let gcache = b.field(gworker, "cache");
    let glock = b.field(gworker, "lock");
    let grun = b.method(gworker, "run", &[], false);
    {
        let this = b.this(grun);
        let l = b.var(grun, "l");
        let ch = b.var(grun, "ch");
        let v = b.var(grun, "v");
        b.load(grun, l, this, glock);
        b.load(grun, ch, this, gcache);
        b.alloc(grun, v, std.object);
        b.monitor_enter(grun, l);
        b.store(grun, ch, val, v);
        b.monitor_exit(grun, l);
    }

    // 4. Lock ladder: the outer lock protects the access only through the
    // interprocedural must-lock set of `step`.
    let cell = b.class(&format!("{prefix}Cell"), Some(std.object));
    let slot = b.field(cell, "slot");
    let lworker = b.class(&format!("{prefix}LadderWorker"), Some(std.object));
    let louter = b.field(lworker, "outer");
    let linner = b.field(lworker, "inner");
    let lcell = b.field(lworker, "cell");
    let lstep = b.method(lworker, "step", &[], false);
    {
        let this = b.this(lstep);
        let li = b.var(lstep, "li");
        let lc = b.var(lstep, "lc");
        let v = b.var(lstep, "v");
        b.load(lstep, li, this, linner);
        b.load(lstep, lc, this, lcell);
        b.alloc(lstep, v, std.object);
        b.monitor_enter(lstep, li);
        b.store(lstep, lc, slot, v);
        b.monitor_exit(lstep, li);
    }
    let lrun = b.method(lworker, "run", &[], false);
    {
        let this = b.this(lrun);
        let lo = b.var(lrun, "lo");
        b.load(lrun, lo, this, louter);
        b.monitor_enter(lrun, lo);
        b.vcall(lrun, None, this, "step", &[]);
        b.monitor_exit(lrun, lo);
    }

    // 5. Joined writer: ordered by the matching join.
    let jcell = b.class(&format!("{prefix}JoinCell"), Some(std.object));
    let jslot = b.field(jcell, "slot");
    let jworker = b.class(&format!("{prefix}JoinWorker"), Some(std.object));
    let jfld = b.field(jworker, "cell");
    let jrun = b.method(jworker, "run", &[], false);
    {
        let this = b.this(jrun);
        let jc = b.var(jrun, "jc");
        let v = b.var(jrun, "v");
        b.load(jrun, jc, this, jfld);
        b.alloc(jrun, v, std.object);
        b.store(jrun, jc, jslot, v);
    }

    // Shared infrastructure in main: one counter, one cache + lock, one
    // ladder (outer/inner/cell), then `threads` workers of each shape.
    let c = b.var(main, &format!("{prefix}_counter"));
    b.alloc(main, c, counter);
    let ch = b.var(main, &format!("{prefix}_cache"));
    let lk = b.var(main, &format!("{prefix}_lk"));
    b.alloc(main, ch, cache);
    b.alloc(main, lk, std.object);
    let lo = b.var(main, &format!("{prefix}_lo"));
    let li = b.var(main, &format!("{prefix}_li"));
    let lc = b.var(main, &format!("{prefix}_lc"));
    b.alloc(main, lo, std.object);
    b.alloc(main, li, std.object);
    b.alloc(main, lc, cell);

    for k in 0..threads {
        let fw = b.var(main, &format!("{prefix}_fw{k}"));
        b.alloc(main, fw, farm);
        b.spawn(main, fw);

        let cw = b.var(main, &format!("{prefix}_cw{k}"));
        b.alloc(main, cw, cworker);
        b.store(main, cw, cfld, c);
        b.spawn(main, cw);

        let gw = b.var(main, &format!("{prefix}_gw{k}"));
        b.alloc(main, gw, gworker);
        b.store(main, gw, gcache, ch);
        b.store(main, gw, glock, lk);
        b.spawn(main, gw);

        let lw = b.var(main, &format!("{prefix}_lw{k}"));
        b.alloc(main, lw, lworker);
        b.store(main, lw, louter, lo);
        b.store(main, lw, linner, li);
        b.store(main, lw, lcell, lc);
        b.spawn(main, lw);

        let jc = b.var(main, &format!("{prefix}_jc{k}"));
        let jw = b.var(main, &format!("{prefix}_jw{k}"));
        let jv = b.var(main, &format!("{prefix}_jv{k}"));
        b.alloc(main, jc, jcell);
        b.alloc(main, jw, jworker);
        b.store(main, jw, jfld, jc);
        b.alloc(main, jv, std.object);
        b.spawn(main, jw);
        b.join(main, jw);
        b.store(main, jc, jslot, jv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rudoop_core::policy::{Insensitive, ObjectSensitive};
    use rudoop_core::solver::{analyze, SolverConfig};
    use rudoop_core::PrecisionMetrics;
    use rudoop_ir::{validate, ClassHierarchy};

    fn fresh() -> (ProgramBuilder, Std, MethodId, SplitMix64) {
        let mut b = ProgramBuilder::new();
        let std = crate::stdlib::build(&mut b);
        let main_cls = b.class("Main", Some(std.object));
        let main = b.method(main_cls, "main", &[], true);
        b.entry(main);
        (b, std, main, SplitMix64::new(7))
    }

    #[test]
    fn pool_population_flows_through_load() {
        let (mut b, std, main, mut rng) = fresh();
        let p = pool(&mut b, &std, main, "P", 30, 3, true, 0, &mut rng);
        // Call load once from main to observe the population.
        let out = b.var(main, "out");
        b.vcall(main, Some(out), p.reg_var, "load", &[]);
        let program = b.finish();
        assert_eq!(validate(&program), Ok(()));
        let hier = ClassHierarchy::new(&program);
        let r = analyze(&program, &hier, &Insensitive, &SolverConfig::default());
        // `out` sees at least the 30 values.
        assert!(
            r.points_to(out).len() >= 30,
            "got {}",
            r.points_to(out).len()
        );
    }

    #[test]
    fn wrapper_amplifier_is_cheap_insensitively_and_costly_contextually() {
        let (mut b, std, main, mut rng) = fresh();
        let p = pool(&mut b, &std, main, "P", 60, 3, true, 0, &mut rng);
        wrapper_amplifier(
            &mut b, &std, main, "W", &p, 2, 2, 12, 0, 6, 8, true, &mut rng,
        );
        let program = b.finish();
        assert_eq!(validate(&program), Ok(()));
        let hier = ClassHierarchy::new(&program);
        let insens = analyze(&program, &hier, &Insensitive, &SolverConfig::default());
        let objs = analyze(
            &program,
            &hier,
            &ObjectSensitive::new(2, 1),
            &SolverConfig::default(),
        );
        assert!(insens.outcome.is_complete());
        assert!(objs.outcome.is_complete());
        assert!(
            objs.stats.derivations > 3 * insens.stats.derivations,
            "2objH {} vs insens {}",
            objs.stats.derivations,
            insens.stats.derivations
        );
    }

    #[test]
    fn probes_are_resolved_by_context_sensitivity() {
        let (mut b, std, main, _rng) = fresh();
        let counts = probes(&mut b, &std, main, "Pr", 5, 2, 0, None);
        assert_eq!(counts.clean, 5);
        let program = b.finish();
        assert_eq!(validate(&program), Ok(()));
        let hier = ClassHierarchy::new(&program);
        let insens = analyze(&program, &hier, &Insensitive, &SolverConfig::default());
        let objs = analyze(
            &program,
            &hier,
            &ObjectSensitive::new(2, 1),
            &SolverConfig::default(),
        );
        let pm_i = PrecisionMetrics::compute(&program, &hier, &insens);
        let pm_o = PrecisionMetrics::compute(&program, &hier, &objs);
        // Each probe contributes one polymorphic describe site and one
        // failing cast insensitively; object-sensitivity resolves all of
        // them, and the silent sides' variant methods become unreachable.
        assert!(pm_i.polymorphic_call_sites >= 5, "{pm_i:?}");
        assert_eq!(pm_o.polymorphic_call_sites, 0, "{pm_o:?}");
        assert!(pm_i.casts_may_fail >= 5);
        assert_eq!(pm_o.casts_may_fail, 0);
        assert!(
            pm_o.reachable_methods + 3 * 5 <= pm_i.reachable_methods,
            "silent variants stay reachable: {} vs {}",
            pm_o.reachable_methods,
            pm_i.reachable_methods
        );
    }

    #[test]
    fn event_bus_is_megamorphic_under_any_context() {
        let (mut b, std, main, _rng) = fresh();
        event_bus(&mut b, &std, main, "E", 6);
        let program = b.finish();
        assert_eq!(validate(&program), Ok(()));
        let hier = ClassHierarchy::new(&program);
        let objs = analyze(
            &program,
            &hier,
            &ObjectSensitive::new(2, 1),
            &SolverConfig::default(),
        );
        let pm = PrecisionMetrics::compute(&program, &hier, &objs);
        assert_eq!(pm.polymorphic_call_sites, 1);
    }

    #[test]
    fn app_mass_keeps_cast_floor() {
        let (mut b, std, main, _rng) = fresh();
        app_mass(&mut b, &std, main, "A", 8, 5);
        let program = b.finish();
        assert_eq!(validate(&program), Ok(()));
        let hier = ClassHierarchy::new(&program);
        let objs = analyze(
            &program,
            &hier,
            &ObjectSensitive::new(2, 1),
            &SolverConfig::default(),
        );
        let pm = PrecisionMetrics::compute(&program, &hier, &objs);
        // The in-run cast succeeds (builder strings are Strings); the 5
        // always-fail casts and at least the megamorphic run() remain.
        assert!(pm.casts_may_fail >= 5, "{pm:?}");
        assert!(pm.polymorphic_call_sites >= 1);
    }

    #[test]
    fn visitor_pattern_is_megamorphic() {
        let (mut b, std, main, _rng) = fresh();
        visitor(&mut b, &std, main, "V", 5, 3);
        let program = b.finish();
        assert_eq!(validate(&program), Ok(()));
        let hier = ClassHierarchy::new(&program);
        let r = analyze(
            &program,
            &hier,
            &ObjectSensitive::new(2, 1),
            &SolverConfig::default(),
        );
        let pm = PrecisionMetrics::compute(&program, &hier, &r);
        // accept (over 5 node classes) and visit (over 3 visitors) stay
        // polymorphic under any context.
        assert!(pm.polymorphic_call_sites >= 2, "{pm:?}");
    }

    #[test]
    fn stream_chain_delegates_to_the_source() {
        let (mut b, std, main, _rng) = fresh();
        streams(&mut b, &std, main, "S", 4);
        let program = b.finish();
        assert_eq!(validate(&program), Ok(()));
        let hier = ClassHierarchy::new(&program);
        let r = analyze(
            &program,
            &hier,
            &ObjectSensitive::new(2, 1),
            &SolverConfig::default(),
        );
        // The outermost read() returns the source's chunk.
        let out = program
            .vars
            .iter()
            .find(|(_, v)| v.name == "S_out")
            .map(|(id, _)| id)
            .expect("out var");
        assert_eq!(r.points_to(out).len(), 1);
        assert!(r.outcome.is_complete());
    }

    #[test]
    fn util_chain_validates_and_runs() {
        let (mut b, std, main, mut rng) = fresh();
        let p = pool(&mut b, &std, main, "P", 40, 2, false, 0, &mut rng);
        util_chain(&mut b, &std, main, "U", &p, 4, 3, 3, 2);
        let program = b.finish();
        assert_eq!(validate(&program), Ok(()));
        let hier = ClassHierarchy::new(&program);
        let r = analyze(&program, &hier, &Insensitive, &SolverConfig::default());
        assert!(r.outcome.is_complete());
    }
}
