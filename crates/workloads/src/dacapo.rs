//! The nine DaCapo-2006-shaped benchmark specs used throughout the
//! evaluation harness.
//!
//! Each spec is tuned so that, under the harness's standard derivation
//! budget, the relative behavior of the analyses matches the paper:
//!
//! - `antlr`, `lusearch`, `pmd`: well-behaved — every analysis completes
//!   quickly (the paper's "benchmarks that are already certain to scale"),
//! - `bloat`, `chart`, `eclipse`, `xalan`: heavy — `2objH` completes but
//!   slowly; `2callH` exceeds the budget on `bloat` and `xalan`,
//! - `hsqldb`: `2objH` and `2callH` exceed the budget; `2typeH` completes
//!   (slowest of the set); Heuristic B rescues everything (its hot methods
//!   have huge, concentrated points-to volumes),
//! - `jython`: every deep analysis exceeds the budget, and the cost is
//!   *diffuse* (many medium-volume methods below Heuristic B's cutoffs), so
//!   introspective Heuristic B still fails on it while Heuristic A scales —
//!   exactly the paper's Figure 5/6/7 story.

use crate::spec::WorkloadSpec;

/// The names of the six scalability-challenged benchmarks of Figures 5–7.
pub const HARD_SIX: [&str; 6] = ["bloat", "chart", "eclipse", "hsqldb", "jython", "xalan"];

/// All nine benchmark names of Figure 1, in the paper's order.
pub const ALL_NINE: [&str; 9] = [
    "antlr", "bloat", "chart", "eclipse", "hsqldb", "jython", "lusearch", "pmd", "xalan",
];

fn base(name: &str, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: name.to_owned(),
        seed,
        ..WorkloadSpec::default()
    }
}

/// `antlr`: parser generator — modest, well-behaved.
pub fn antlr() -> WorkloadSpec {
    WorkloadSpec {
        pool_values: 250,
        pool_value_classes: 5,
        wrapper_classes: 2,
        creator_classes: 3,
        creator_instances: 12,
        allocator_classes: 0,
        wrapper_sites_per_class: 4,
        process_steps: 4,
        util_consumers: 8,
        util_dists: 4,
        util_chain: 3,
        util_moves: 3,
        medium_pool: 0,
        probes_clean: 12,
        probes_type_friendly: 8,
        probes_medium: 0,
        listeners: 8,
        app_classes: 120,
        app_casts: 8,
        ..base("antlr", 1)
    }
}

/// `lusearch`: text search — small and flat.
pub fn lusearch() -> WorkloadSpec {
    WorkloadSpec {
        pool_values: 220,
        pool_value_classes: 4,
        wrapper_classes: 2,
        creator_classes: 2,
        creator_instances: 10,
        allocator_classes: 0,
        wrapper_sites_per_class: 4,
        process_steps: 3,
        util_consumers: 6,
        util_dists: 4,
        util_chain: 2,
        util_moves: 2,
        medium_pool: 0,
        probes_clean: 10,
        probes_type_friendly: 7,
        probes_medium: 0,
        listeners: 6,
        app_classes: 100,
        app_casts: 6,
        ..base("lusearch", 2)
    }
}

/// `pmd`: source analyzer — mid-size, still well-behaved.
pub fn pmd() -> WorkloadSpec {
    WorkloadSpec {
        pool_values: 350,
        pool_value_classes: 6,
        wrapper_classes: 3,
        creator_classes: 4,
        creator_instances: 20,
        allocator_classes: 0,
        wrapper_sites_per_class: 6,
        process_steps: 5,
        util_consumers: 40,
        util_dists: 8,
        util_chain: 3,
        util_moves: 4,
        medium_pool: 130,
        probes_clean: 14,
        probes_type_friendly: 9,
        probes_medium: 4,
        listeners: 10,
        app_classes: 160,
        app_casts: 10,
        ..base("pmd", 3)
    }
}

/// `bloat`: bytecode optimizer — heavy 2objH, unscalable 2callH.
pub fn bloat() -> WorkloadSpec {
    WorkloadSpec {
        pool_values: 500,
        pool_value_classes: 8,
        wrapper_classes: 3,
        creator_classes: 4,
        creator_instances: 48,
        allocator_classes: 6,
        wrapper_sites_per_class: 18,
        process_steps: 15,
        util_consumers: 80,
        util_dists: 42,
        util_chain: 3,
        util_moves: 14,
        medium_pool: 150,
        probes_clean: 16,
        probes_type_friendly: 10,
        probes_medium: 6,
        listeners: 12,
        app_classes: 260,
        app_casts: 12,
        ..base("bloat", 4)
    }
}

/// `chart`: plotting — heavy but completing everywhere except the paper's
/// budget-level slowdowns.
pub fn chart() -> WorkloadSpec {
    WorkloadSpec {
        pool_values: 450,
        pool_value_classes: 7,
        wrapper_classes: 3,
        creator_classes: 4,
        creator_instances: 40,
        allocator_classes: 6,
        wrapper_sites_per_class: 12,
        process_steps: 6,
        util_consumers: 48,
        util_dists: 32,
        util_chain: 3,
        util_moves: 5,
        medium_pool: 140,
        probes_clean: 14,
        probes_type_friendly: 9,
        probes_medium: 5,
        listeners: 12,
        app_classes: 240,
        app_casts: 10,
        ..base("chart", 5)
    }
}

/// `eclipse`: IDE core — like `chart` with a heavier call-site profile
/// (completing, but close to the wall).
pub fn eclipse() -> WorkloadSpec {
    WorkloadSpec {
        pool_values: 480,
        pool_value_classes: 8,
        wrapper_classes: 3,
        creator_classes: 5,
        creator_instances: 40,
        allocator_classes: 8,
        wrapper_sites_per_class: 10,
        process_steps: 7,
        util_consumers: 60,
        util_dists: 38,
        util_chain: 3,
        util_moves: 5,
        medium_pool: 150,
        probes_clean: 15,
        probes_type_friendly: 10,
        probes_medium: 5,
        listeners: 14,
        app_classes: 280,
        app_casts: 12,
        ..base("eclipse", 6)
    }
}

/// `xalan`: XSLT — heavy 2objH, unscalable 2callH.
pub fn xalan() -> WorkloadSpec {
    WorkloadSpec {
        pool_values: 550,
        pool_value_classes: 8,
        wrapper_classes: 3,
        creator_classes: 4,
        creator_instances: 44,
        allocator_classes: 6,
        wrapper_sites_per_class: 16,
        process_steps: 14,
        util_consumers: 80,
        util_dists: 42,
        util_chain: 3,
        util_moves: 13,
        medium_pool: 150,
        probes_clean: 14,
        probes_type_friendly: 9,
        probes_medium: 5,
        listeners: 12,
        app_classes: 260,
        app_casts: 10,
        ..base("xalan", 7)
    }
}

/// `hsqldb`: database — concentrated blowup: few classes, huge methods.
/// `2objH`/`2callH` exceed any budget; Heuristic B's volume cutoffs catch
/// the hot methods, so IntroB completes.
pub fn hsqldb() -> WorkloadSpec {
    WorkloadSpec {
        pool_values: 600,
        pool_value_classes: 6,
        wrapper_classes: 2,
        creator_classes: 3,
        creator_instances: 150,
        allocator_classes: 12,
        wrapper_sites_per_class: 40,
        process_steps: 14,
        util_consumers: 80,
        util_dists: 50,
        util_chain: 3,
        util_moves: 12,
        medium_pool: 150,
        probes_clean: 16,
        probes_type_friendly: 10,
        probes_medium: 6,
        listeners: 12,
        app_classes: 500,
        app_casts: 12,
        ..base("hsqldb", 8)
    }
}

/// `jython`: interpreter — diffuse blowup: many medium classes and methods,
/// none crossing Heuristic B's cutoffs, so even IntroB fails; only
/// Heuristic A (metric-4 / in-flow signals) scales. Also the only
/// benchmark where `2typeH` explodes (opcode handler classes make type
/// contexts plentiful).
pub fn jython() -> WorkloadSpec {
    WorkloadSpec {
        pool_values: 420,
        pool_value_classes: 12,
        wrapper_classes: 4,
        creator_classes: 80,
        creator_instances: 2500,
        allocator_classes: 4,
        wrapper_sites_per_class: 4,
        process_steps: 3,
        stateful_wrappers: false,
        deep_pool_values: 900,
        deep_creator_classes: 70,
        deep_allocator_classes: 50,
        deep_instances: 3500,
        deep_sites_per_class: 1,
        deep_steps: 14,
        util_consumers: 200,
        util_dists: 70,
        util_chain: 3,
        util_moves: 3,
        medium_pool: 140,
        probes_clean: 16,
        probes_type_friendly: 10,
        probes_medium: 6,
        listeners: 14,
        app_classes: 200,
        app_casts: 10,
        ..base("jython", 9)
    }
}

/// Looks up a benchmark spec by DaCapo name.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    match name {
        "antlr" => Some(antlr()),
        "bloat" => Some(bloat()),
        "chart" => Some(chart()),
        "eclipse" => Some(eclipse()),
        "hsqldb" => Some(hsqldb()),
        "jython" => Some(jython()),
        "lusearch" => Some(lusearch()),
        "pmd" => Some(pmd()),
        "xalan" => Some(xalan()),
        _ => None,
    }
}

/// The nine Figure-1 benchmarks, in order.
pub fn all_nine() -> Vec<WorkloadSpec> {
    ALL_NINE
        .iter()
        .map(|n| by_name(n).expect("known name"))
        .collect()
}

/// The six scalability-challenged benchmarks of Figures 5–7, in order.
pub fn hard_six() -> Vec<WorkloadSpec> {
    HARD_SIX
        .iter()
        .map(|n| by_name(n).expect("known name"))
        .collect()
}

/// The seven benchmarks of the Figure-4 table (the hard six plus `pmd`).
pub fn figure4_seven() -> Vec<WorkloadSpec> {
    [
        "bloat", "chart", "eclipse", "hsqldb", "jython", "pmd", "xalan",
    ]
    .iter()
    .map(|n| by_name(n).expect("known name"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rudoop_ir::validate;

    #[test]
    fn every_benchmark_builds_and_validates() {
        for spec in all_nine() {
            let p = spec.build();
            assert_eq!(validate(&p), Ok(()), "benchmark {}", spec.name);
            assert!(
                p.instruction_count() > 500,
                "benchmark {} too small",
                spec.name
            );
        }
    }

    #[test]
    fn by_name_covers_exactly_the_nine() {
        for n in ALL_NINE {
            assert!(by_name(n).is_some());
        }
        assert!(by_name("fop").is_none());
    }

    #[test]
    fn hard_six_is_a_subset_of_all_nine() {
        for n in HARD_SIX {
            assert!(ALL_NINE.contains(&n));
        }
    }
}
