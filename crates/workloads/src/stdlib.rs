//! A miniature "standard library" in the IL: `Object`, `String`,
//! `StringBuilder`, `List`, `Map`, and `Iter`.
//!
//! These classes reproduce the analysis behavior of their Java namesakes
//! that matters for points-to workloads: collections store elements in
//! `Object`-typed fields (the classic source of imprecision), `Map.put`
//! allocates one node per call site (so context-sensitivity can split
//! nodes), and `StringBuilder.toString` has a single shared allocation site
//! (so strings conflate, as they famously do in real analyses).

use rudoop_ir::{ClassId, FieldId, MethodId, ProgramBuilder};

/// Handles to the mini standard library inside a program under
/// construction.
#[derive(Debug, Clone, Copy)]
pub struct Std {
    /// Root class.
    pub object: ClassId,
    /// `String`.
    pub string: ClassId,
    /// `StringBuilder`, with `append`/`to_string`.
    pub string_builder: ClassId,
    /// `StringBuilder.append(s) -> StringBuilder` (returns `this`).
    pub sb_append: MethodId,
    /// `StringBuilder.to_string() -> String` (shared allocation site).
    pub sb_to_string: MethodId,
    /// `List`, with an `Object`-typed element slot.
    pub list: ClassId,
    /// `List.elem` field.
    pub list_elem: FieldId,
    /// `List.add(x)`.
    pub list_add: MethodId,
    /// `List.get() -> Object`.
    pub list_get: MethodId,
    /// `List.iter() -> Iter`.
    pub list_iter: MethodId,
    /// `Iter`, a list iterator.
    pub iter: ClassId,
    /// `Iter.next() -> Object`.
    pub iter_next: MethodId,
    /// `Map`, a key→value store.
    pub map: ClassId,
    /// `Map.put(k, v)` — allocates a `Node` per call.
    pub map_put: MethodId,
    /// `Map.get(k) -> Object`.
    pub map_get: MethodId,
    /// `Node`, the map's internal entry class.
    pub node: ClassId,
}

/// Builds the standard library into `b`. Call this first: it creates the
/// root `Object` class.
pub fn build(b: &mut ProgramBuilder) -> Std {
    let object = b.class("Object", None);
    let string = b.class("String", Some(object));
    let string_builder = b.class("StringBuilder", Some(object));
    let list = b.class("List", Some(object));
    let iter = b.class("Iter", Some(object));
    let map = b.class("Map", Some(object));
    let node = b.class("Node", Some(object));

    // StringBuilder: append returns this; to_string allocates one shared
    // String (all builders conflate their output — faithful to practice).
    let sb_buf = b.field(string_builder, "buf");
    let sb_append = b.method(string_builder, "append", &["s"], false);
    {
        let this = b.this(sb_append);
        let s = b.param(sb_append, 0);
        b.store(sb_append, this, sb_buf, s);
        b.ret(sb_append, this);
    }
    let sb_to_string = b.method(string_builder, "to_string", &[], false);
    {
        let r = b.var(sb_to_string, "r");
        b.alloc(sb_to_string, r, string);
        b.ret(sb_to_string, r);
    }

    // List: a one-slot set abstraction of a growable list.
    let list_elem = b.field(list, "elem");
    let list_add = b.method(list, "add", &["x"], false);
    {
        let this = b.this(list_add);
        let x = b.param(list_add, 0);
        b.store(list_add, this, list_elem, x);
    }
    let list_get = b.method(list, "get", &[], false);
    {
        let this = b.this(list_get);
        let r = b.var(list_get, "r");
        b.load(list_get, r, this, list_elem);
        b.ret(list_get, r);
    }
    let iter_src = b.field(iter, "src");
    let list_iter = b.method(list, "iter", &[], false);
    {
        let this = b.this(list_iter);
        let it = b.var(list_iter, "it");
        b.alloc(list_iter, it, iter);
        b.store(list_iter, it, iter_src, this);
        b.ret(list_iter, it);
    }
    let iter_next = b.method(iter, "next", &[], false);
    {
        let this = b.this(iter_next);
        let src = b.var(iter_next, "src");
        let r = b.var(iter_next, "r");
        b.load(iter_next, src, this, iter_src);
        let elem_field = list_elem;
        b.load(iter_next, r, src, elem_field);
        b.ret(iter_next, r);
    }

    // Map: `put` allocates a Node per call (context can split nodes); the
    // single `entries` slot merges them (bucket-array abstraction).
    let map_entries = b.field(map, "entries");
    let node_key = b.field(node, "key");
    let node_val = b.field(node, "val");
    let map_put = b.method(map, "put", &["k", "v"], false);
    {
        let this = b.this(map_put);
        let k = b.param(map_put, 0);
        let v = b.param(map_put, 1);
        let n = b.var(map_put, "n");
        b.alloc(map_put, n, node);
        b.store(map_put, n, node_key, k);
        b.store(map_put, n, node_val, v);
        b.store(map_put, this, map_entries, n);
    }
    let map_get = b.method(map, "get", &["k"], false);
    {
        let this = b.this(map_get);
        let n = b.var(map_get, "n");
        let r = b.var(map_get, "r");
        b.load(map_get, n, this, map_entries);
        b.load(map_get, r, n, node_val);
        b.ret(map_get, r);
    }

    Std {
        object,
        string,
        string_builder,
        sb_append,
        sb_to_string,
        list,
        list_elem,
        list_add,
        list_get,
        list_iter,
        iter,
        iter_next,
        map,
        map_put,
        map_get,
        node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rudoop_core::policy::Insensitive;
    use rudoop_core::solver::{analyze, SolverConfig};
    use rudoop_ir::{validate, ClassHierarchy};

    #[test]
    fn stdlib_validates_on_its_own() {
        let mut b = ProgramBuilder::new();
        let std = build(&mut b);
        let main = b.method(std.object, "main", &[], true);
        b.entry(main);
        let p = b.finish();
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn list_round_trips_elements() {
        let mut b = ProgramBuilder::new();
        let std = build(&mut b);
        let main = b.method(std.object, "main", &[], true);
        let l = b.var(main, "l");
        let x = b.var(main, "x");
        let out = b.var(main, "out");
        b.alloc(main, l, std.list);
        let h = b.alloc(main, x, std.string);
        b.vcall(main, None, l, "add", &[x]);
        b.vcall(main, Some(out), l, "get", &[]);
        b.entry(main);
        let p = b.finish();
        let hier = ClassHierarchy::new(&p);
        let r = analyze(&p, &hier, &Insensitive, &SolverConfig::default());
        assert_eq!(r.points_to(out), &[h]);
    }

    #[test]
    fn map_round_trips_values_through_nodes() {
        let mut b = ProgramBuilder::new();
        let std = build(&mut b);
        let main = b.method(std.object, "main", &[], true);
        let m = b.var(main, "m");
        let k = b.var(main, "k");
        let v = b.var(main, "v");
        let out = b.var(main, "out");
        b.alloc(main, m, std.map);
        b.alloc(main, k, std.string);
        let hv = b.alloc(main, v, std.string);
        b.vcall(main, None, m, "put", &[k, v]);
        b.vcall(main, Some(out), m, "get", &[k]);
        b.entry(main);
        let p = b.finish();
        let hier = ClassHierarchy::new(&p);
        let r = analyze(&p, &hier, &Insensitive, &SolverConfig::default());
        assert!(r.points_to(out).contains(&hv));
    }

    #[test]
    fn iterator_yields_list_contents() {
        let mut b = ProgramBuilder::new();
        let std = build(&mut b);
        let main = b.method(std.object, "main", &[], true);
        let l = b.var(main, "l");
        let x = b.var(main, "x");
        let it = b.var(main, "it");
        let out = b.var(main, "out");
        b.alloc(main, l, std.list);
        let h = b.alloc(main, x, std.string);
        b.vcall(main, None, l, "add", &[x]);
        b.vcall(main, Some(it), l, "iter", &[]);
        b.vcall(main, Some(out), it, "next", &[]);
        b.entry(main);
        let p = b.finish();
        let hier = ClassHierarchy::new(&p);
        let r = analyze(&p, &hier, &Insensitive, &SolverConfig::default());
        assert_eq!(r.points_to(out), &[h]);
    }
}
