//! [`WorkloadSpec`]: a declarative recipe composing the pattern generators
//! into one benchmark program.

use rudoop_ir::rng::SplitMix64;
use rudoop_ir::{Program, ProgramBuilder, TaintSpec};

use crate::patterns::{self, ProbeCounts};
use crate::stdlib;

/// A benchmark recipe. All counts are knobs of the pattern generators; see
/// [`crate::patterns`] for what each one amplifies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Benchmark name (DaCapo-style).
    pub name: String,
    /// RNG seed (workloads are fully deterministic given the spec).
    pub seed: u64,

    /// Hub population size (the paper's fat-points-to source). 0 disables
    /// the hub and both amplifiers.
    pub pool_values: usize,
    /// Classes the hub population is spread over.
    pub pool_value_classes: usize,
    /// Cross-link hub values (gives them fat fields — metric #4 signal).
    pub cross_link: bool,
    /// Reader variables carrying the hub population (hub "popularity",
    /// the metric-#5 signal; Heuristic A's K cutoff is 100).
    pub pool_readers: usize,

    /// Wrapper classes of the object-sensitivity amplifier.
    pub wrapper_classes: usize,
    /// Creator classes (the type-sensitivity knob).
    pub creator_classes: usize,
    /// Creator instances (the object-sensitivity context multiplier).
    pub creator_instances: usize,
    /// Classes whose static methods allocate the creator instances (the
    /// second type-sensitivity multiplier; 0 = allocate in `main`).
    pub allocator_classes: usize,
    /// Wrapper allocation sites per creator class.
    pub wrapper_sites_per_class: usize,
    /// Chained helper calls in `process` (volume per context).
    pub process_steps: usize,
    /// Whether the primary amplifier's wrappers round-trip values through a
    /// state field (fat per-object metrics, catchable by Heuristic B's
    /// cost-product) or stay stateless (diffuse, B-proof).
    pub stateful_wrappers: bool,

    /// Second "deep" amplifier: hub size (0 = disabled). This one is
    /// *concentrated*: its hot methods have points-to volumes above
    /// Heuristic B's cutoff, so IntroB neutralizes it — used to give a
    /// benchmark a type-sensitivity explosion that IntroB still rescues
    /// (the jython 2typeH story) independent of the diffuse amplifier.
    pub deep_pool_values: usize,
    /// Deep amplifier: creator classes (type multiplier 1).
    pub deep_creator_classes: usize,
    /// Deep amplifier: allocator classes (type multiplier 2).
    pub deep_allocator_classes: usize,
    /// Deep amplifier: creator instances.
    pub deep_instances: usize,
    /// Deep amplifier: wrapper sites per creator class.
    pub deep_sites_per_class: usize,
    /// Deep amplifier: chained helper calls (drives volume above B's P).
    pub deep_steps: usize,

    /// Consumers of the static utility chain (call-site amplifier).
    pub util_consumers: usize,
    /// Distributor methods fanning into the consumers.
    pub util_dists: usize,
    /// Utility chain depth.
    pub util_chain: usize,
    /// Local copies per utility level.
    pub util_moves: usize,

    /// Medium hub population (sized between Heuristic A's and B's
    /// thresholds); 0 disables medium probes.
    pub medium_pool: usize,
    /// Precision probes every context flavor resolves.
    pub probes_clean: usize,
    /// Clean probes whose factories live in per-probe classes
    /// (type-sensitivity resolves these too).
    pub probes_type_friendly: usize,
    /// Probes Heuristic A abandons but Heuristic B keeps.
    pub probes_medium: usize,

    /// Listener classes on the megamorphic event bus.
    pub listeners: usize,
    /// Node classes in the visitor-pattern fragment (0 disables).
    pub visitor_nodes: usize,
    /// Visitor classes in the visitor-pattern fragment.
    pub visitor_kinds: usize,
    /// Depth of the decorator/stream chain (0 disables).
    pub stream_depth: usize,
    /// Well-behaved application classes.
    pub app_classes: usize,
    /// Always-failing casts in the application bulk.
    pub app_casts: usize,

    /// Repetitions of the taint-flow battery
    /// ([`patterns::taint_kit`]); 0 (the default) emits nothing, keeping
    /// programs byte-identical to pre-taint builds.
    pub taint_flows: usize,

    /// Threads per shape in the concurrency battery
    /// ([`patterns::concurrency_kit`]): each unit spawns one worker of
    /// every shape (farm, shared counter, guarded cache, lock ladder,
    /// joined writer). 0 (the default) emits nothing, keeping programs
    /// byte-identical to pre-concurrency builds. Deliberately *not*
    /// multiplied by `scale`: thread count is a shape knob — it changes
    /// which races exist, not just volume.
    pub concurrency: usize,

    /// Linear size multiplier. Multiplies the *instance* counts of the
    /// pattern batteries — hub population and readers, utility consumers,
    /// precision probes, listeners, visitor nodes, application classes —
    /// so program volume grows roughly linearly in `scale` without
    /// changing the benchmark's *shape*: the context-explosion
    /// multipliers (creator instances, allocation sites per class, chain
    /// depths) and the threshold-calibrated medium pool are deliberately
    /// left alone, so heuristic classifications survive scaling. `1` (the
    /// default) is the identity: builds are byte-identical to a spec
    /// without the knob. Used to size multi-shard parallel runs (50k+ IL
    /// instructions) out of the same recipes.
    pub scale: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            name: "custom".to_owned(),
            seed: 42,
            pool_values: 100,
            pool_value_classes: 4,
            cross_link: true,
            pool_readers: 120,
            wrapper_classes: 2,
            creator_classes: 2,
            creator_instances: 8,
            allocator_classes: 0,
            wrapper_sites_per_class: 8,
            process_steps: 6,
            stateful_wrappers: true,
            deep_pool_values: 0,
            deep_creator_classes: 0,
            deep_allocator_classes: 0,
            deep_instances: 0,
            deep_sites_per_class: 0,
            deep_steps: 0,
            util_consumers: 8,
            util_dists: 4,
            util_chain: 3,
            util_moves: 3,
            medium_pool: 0,
            probes_clean: 10,
            probes_type_friendly: 3,
            probes_medium: 0,
            listeners: 6,
            visitor_nodes: 6,
            visitor_kinds: 3,
            stream_depth: 5,
            app_classes: 20,
            app_casts: 6,
            taint_flows: 0,
            concurrency: 0,
            scale: 1,
        }
    }
}

impl WorkloadSpec {
    /// Builds the benchmark program described by this spec.
    pub fn build(&self) -> Program {
        // Linear knobs grow with `scale`; shape knobs (context
        // multipliers, chain depths, the threshold-sized medium pool) do
        // not. `scale == 1` must stay the identity.
        let s = self.scale.max(1);
        let mut rng = SplitMix64::new(self.seed);
        let mut b = ProgramBuilder::new();
        let std = stdlib::build(&mut b);
        let main_cls = b.class("Main", Some(std.object));
        let main = b.method(main_cls, "main", &[], true);
        b.entry(main);

        if self.pool_values > 0 {
            let pool = patterns::pool(
                &mut b,
                &std,
                main,
                "Hub",
                self.pool_values * s,
                self.pool_value_classes,
                self.cross_link,
                self.pool_readers * s,
                &mut rng,
            );
            if self.creator_instances > 0 && self.wrapper_sites_per_class > 0 {
                patterns::wrapper_amplifier(
                    &mut b,
                    &std,
                    main,
                    "Amp",
                    &pool,
                    self.wrapper_classes,
                    self.creator_classes,
                    self.creator_instances,
                    self.allocator_classes,
                    self.wrapper_sites_per_class,
                    self.process_steps,
                    self.stateful_wrappers,
                    &mut rng,
                );
            }
            if self.util_consumers > 0 && self.util_dists > 0 {
                patterns::util_chain(
                    &mut b,
                    &std,
                    main,
                    "Call",
                    &pool,
                    self.util_consumers * s,
                    self.util_dists,
                    self.util_chain,
                    self.util_moves,
                );
            }
        }

        if self.deep_pool_values > 0 {
            let deep_pool = patterns::pool(
                &mut b,
                &std,
                main,
                "Deep",
                self.deep_pool_values,
                4,
                self.cross_link,
                self.pool_readers,
                &mut rng,
            );
            patterns::wrapper_amplifier(
                &mut b,
                &std,
                main,
                "Deep",
                &deep_pool,
                2,
                self.deep_creator_classes,
                self.deep_instances,
                self.deep_allocator_classes,
                self.deep_sites_per_class,
                self.deep_steps,
                true,
                &mut rng,
            );
        }

        let medium = if self.medium_pool > 0 {
            Some(patterns::pool(
                &mut b,
                &std,
                main,
                "Med",
                self.medium_pool,
                2,
                false, // no cross-linking: must stay under metric-4 cutoffs
                0,
                &mut rng,
            ))
        } else {
            None
        };

        patterns::probes(
            &mut b,
            &std,
            main,
            "Pr",
            self.probes_clean * s,
            self.probes_type_friendly * s,
            self.probes_medium,
            medium.as_ref(),
        );

        if self.listeners > 0 {
            patterns::event_bus(&mut b, &std, main, "Ev", self.listeners * s);
        }
        if self.visitor_nodes > 0 {
            patterns::visitor(
                &mut b,
                &std,
                main,
                "Vis",
                self.visitor_nodes * s,
                self.visitor_kinds,
            );
        }
        if self.stream_depth > 0 {
            patterns::streams(&mut b, &std, main, "St", self.stream_depth);
        }
        if self.app_classes > 0 {
            patterns::app_mass(
                &mut b,
                &std,
                main,
                "App",
                self.app_classes * s,
                self.app_casts,
            );
        }
        if self.taint_flows > 0 {
            patterns::taint_kit(&mut b, &std, main, "Taint", self.taint_flows);
        }
        if self.concurrency > 0 {
            patterns::concurrency_kit(&mut b, &std, main, "Conc", self.concurrency);
        }

        b.finish()
    }

    /// The canonical textual taint spec matching [`patterns::taint_kit`]'s
    /// `Taint` prefix (what [`WorkloadSpec::build`] emits).
    pub const TAINT_SPEC_TEXT: &'static str = "# taint-kit contract\n\
         source TaintKit.source/0\n\
         sanitizer TaintKit.sanitize/1\n\
         sink TaintKit.sink/1 0\n";

    /// The resolved taint spec for a program built from this recipe: empty
    /// when `taint_flows` is 0, the canonical `TaintKit` spec otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `program` was not built by this spec (the references
    /// cannot resolve) — a usage error, not an input condition.
    pub fn taint_spec(&self, program: &Program) -> TaintSpec {
        if self.taint_flows == 0 {
            return TaintSpec::new();
        }
        TaintSpec::parse(Self::TAINT_SPEC_TEXT, program).expect("canonical spec resolves")
    }

    /// The probe tallies this spec emits (for asserting chart shapes),
    /// after `scale` is applied.
    pub fn probe_counts(&self) -> ProbeCounts {
        let s = self.scale.max(1);
        ProbeCounts {
            clean: self.probes_clean * s,
            medium: self.probes_medium,
            type_friendly: self.probes_type_friendly * s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rudoop_ir::validate;

    #[test]
    fn default_spec_builds_a_valid_program() {
        let p = WorkloadSpec::default().build();
        assert_eq!(validate(&p), Ok(()));
        assert!(p.instruction_count() > 300);
        assert_eq!(p.entry_points.len(), 1);
    }

    #[test]
    fn build_is_deterministic() {
        let spec = WorkloadSpec::default();
        let p1 = spec.build();
        let p2 = spec.build();
        assert_eq!(rudoop_ir::print_program(&p1), rudoop_ir::print_program(&p2));
    }

    #[test]
    fn zero_pool_disables_amplifiers() {
        let spec = WorkloadSpec {
            pool_values: 0,
            ..WorkloadSpec::default()
        };
        let p = spec.build();
        assert_eq!(validate(&p), Ok(()));
        assert!(!p.classes.values().any(|c| c.name.starts_with("Amp")));
    }

    #[test]
    fn scale_one_is_the_identity() {
        let base = WorkloadSpec::default().build();
        let scaled = WorkloadSpec {
            scale: 1,
            ..WorkloadSpec::default()
        }
        .build();
        assert_eq!(
            rudoop_ir::print_program(&base),
            rudoop_ir::print_program(&scaled)
        );
        // scale: 0 is clamped to the identity too, not an empty program.
        let clamped = WorkloadSpec {
            scale: 0,
            ..WorkloadSpec::default()
        }
        .build();
        assert_eq!(
            rudoop_ir::print_program(&base),
            rudoop_ir::print_program(&clamped)
        );
    }

    #[test]
    fn scale_grows_volume_linearly_without_changing_shape() {
        let base = WorkloadSpec::default();
        let scaled = WorkloadSpec {
            scale: 8,
            ..WorkloadSpec::default()
        };
        let p1 = base.build();
        let p8 = scaled.build();
        assert_eq!(validate(&p8), Ok(()));
        assert!(
            p8.instruction_count() >= 4 * p1.instruction_count(),
            "scale 8: {} vs base {}",
            p8.instruction_count(),
            p1.instruction_count()
        );
        // Shape knobs are untouched: same wrapper/creator class families.
        assert_eq!(scaled.probe_counts().clean, 8 * base.probe_counts().clean);
        assert_eq!(scaled.probe_counts().medium, base.probe_counts().medium);
    }

    #[test]
    fn concurrency_zero_is_the_identity() {
        let base = WorkloadSpec::default().build();
        let off = WorkloadSpec {
            concurrency: 0,
            ..WorkloadSpec::default()
        }
        .build();
        assert_eq!(
            rudoop_ir::print_program(&base),
            rudoop_ir::print_program(&off),
            "concurrency: 0 must be byte-identical to a spec without the knob"
        );
    }

    #[test]
    fn concurrency_grows_volume_linearly_without_changing_shape() {
        let one = WorkloadSpec {
            concurrency: 1,
            ..WorkloadSpec::default()
        }
        .build();
        let eight = WorkloadSpec {
            concurrency: 8,
            ..WorkloadSpec::default()
        }
        .build();
        assert_eq!(validate(&one), Ok(()));
        assert_eq!(validate(&eight), Ok(()));
        assert_eq!(one.spawn_sites().count(), 5, "5 shapes, one thread each");
        assert_eq!(eight.spawn_sites().count(), 40);
        let base = WorkloadSpec::default().build();
        let per_unit_1 = one.instruction_count() - base.instruction_count();
        let per_unit_8 = eight.instruction_count() - base.instruction_count();
        assert!(
            per_unit_8 >= 7 * per_unit_1 / 2,
            "concurrency 8 added {per_unit_8} instrs vs {per_unit_1} for 1"
        );
        // The battery adds workers, not new class families: shape is fixed.
        assert_eq!(
            one.classes
                .values()
                .filter(|c| c.name.starts_with("Conc"))
                .count(),
            eight
                .classes
                .values()
                .filter(|c| c.name.starts_with("Conc"))
                .count()
        );
    }

    #[test]
    fn medium_pool_enables_medium_probes() {
        let spec = WorkloadSpec {
            medium_pool: 40,
            probes_medium: 3,
            ..WorkloadSpec::default()
        };
        let p = spec.build();
        assert_eq!(validate(&p), Ok(()));
        assert!(p.classes.values().any(|c| c.name.starts_with("Med")));
    }
}
