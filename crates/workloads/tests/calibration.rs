//! Calibration guards: the evaluation figures depend on the benchmark
//! specs keeping specific relationships to the heuristics' paper
//! constants. These tests pin the load-bearing invariants so a future spec
//! edit cannot silently break the reproduced shapes.

use rudoop_core::heuristics::{HeuristicA, HeuristicB, RefinementHeuristic};
use rudoop_core::solver::SolverConfig;
use rudoop_core::{analyze, Insensitive, IntrospectionMetrics};
use rudoop_ir::ClassHierarchy;
use rudoop_workloads::dacapo;

/// hsqldb's blowup is *concentrated*: its amplifier `process` methods must
/// cross Heuristic B's volume cutoff (P = 10000) so IntroB rescues it, and
/// its hub must cross Heuristic A's metric-4 cutoff (M = 200) so IntroA
/// does too.
#[test]
fn hsqldb_heuristic_relationships() {
    let program = dacapo::hsqldb().build();
    let hierarchy = ClassHierarchy::new(&program);
    let insens = analyze(&program, &hierarchy, &Insensitive, &SolverConfig::default());
    assert!(insens.outcome.is_complete());
    let metrics = IntrospectionMetrics::compute(&program, &insens);

    let mut process_volumes = Vec::new();
    for (mid, m) in program.methods.iter() {
        if m.name == "process" && program.classes[m.class].name.starts_with("AmpWrapper") {
            process_volumes.push(metrics.method_total_pts[mid]);
        }
    }
    assert!(!process_volumes.is_empty());
    for v in &process_volumes {
        assert!(
            *v > 10_000,
            "hsqldb amplifier volume {v} must cross Heuristic B's P cutoff"
        );
        assert!(*v < 100_000, "volume {v} looks unhinged; spec drifted");
    }

    // Heuristic A must fire on the amplifier methods...
    let a = HeuristicA::default().select(&program, &metrics, &insens);
    let b = HeuristicB::default().select(&program, &metrics, &insens);
    for (mid, m) in program.methods.iter() {
        if m.name == "process" && program.classes[m.class].name.starts_with("AmpWrapper") {
            assert!(
                a.no_refine_methods.contains(mid),
                "A must exclude {}",
                m.name
            );
            assert!(
                b.no_refine_methods.contains(mid),
                "B must exclude {}",
                m.name
            );
        }
    }

    // ...and the not-refined sets must stay small minorities.
    let stats_a = rudoop_core::RefinementStats::compute(&program, &insens, &a);
    let stats_b = rudoop_core::RefinementStats::compute(&program, &insens, &b);
    assert!(stats_a.call_site_pct() < 50.0, "{stats_a:?}");
    assert!(stats_b.call_site_pct() < 5.0, "{stats_b:?}");
    assert!(
        stats_b.object_pct() <= stats_a.object_pct(),
        "B is more selective than A"
    );
}

/// The diffuse (jython-style) profile is realized by the default spec's
/// mini cousin quickly: stateless wrappers must have zero cost-product so
/// Heuristic B cannot neutralize them through object exclusion.
#[test]
fn stateless_wrappers_evade_heuristic_b_object_exclusion() {
    let spec = rudoop_workloads::WorkloadSpec {
        name: "mini-diffuse".into(),
        pool_values: 260,
        stateful_wrappers: false,
        creator_classes: 6,
        creator_instances: 40,
        wrapper_sites_per_class: 3,
        process_steps: 3,
        util_consumers: 0,
        util_dists: 0,
        medium_pool: 0,
        app_classes: 10,
        ..rudoop_workloads::WorkloadSpec::default()
    };
    let program = spec.build();
    let hierarchy = ClassHierarchy::new(&program);
    let insens = analyze(&program, &hierarchy, &Insensitive, &SolverConfig::default());
    let metrics = IntrospectionMetrics::compute(&program, &insens);
    let b = HeuristicB::default().select(&program, &metrics, &insens);
    for (aid, alloc) in program.allocs.iter() {
        let class = &program.classes[alloc.class].name;
        if class.starts_with("AmpWrapper") {
            assert!(
                !b.no_refine_objects.contains(aid),
                "stateless wrapper {class} must stay refined under B"
            );
        }
    }
}

/// Every benchmark spec builds deterministically to the same instruction
/// count (pin the sizes so accidental generator changes are visible).
#[test]
fn benchmark_sizes_are_pinned() {
    for spec in dacapo::all_nine() {
        let p1 = spec.build();
        let p2 = spec.build();
        assert_eq!(
            p1.instruction_count(),
            p2.instruction_count(),
            "{} must build deterministically",
            spec.name
        );
        assert!(
            p1.instruction_count() > 1_000,
            "{} suspiciously small: {}",
            spec.name,
            p1.instruction_count()
        );
    }
}
