//! Sequential-vs-sharded benchmark: measures wall-clock time of the
//! parallel propagation engine against the sequential solver and writes
//! `BENCH_parallel.json` (schema below) to the current directory.
//!
//! Run with: `cargo run --release --example bench_parallel [out.json]`
//!
//! Every run asserts canonical-stats equality against the sequential
//! reference before its time is recorded, so the file doubles as an
//! equivalence receipt. `host_cpus` records what the host could actually
//! parallelize: on a single-CPU machine the sharded engine cannot beat
//! the sequential solver (threads time-slice one core and pay the
//! epoch-barrier overhead), and the numbers say so rather than pretending
//! otherwise.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use rudoop::analysis::driver::{analyze_flavor, Flavor};
use rudoop::analysis::solver::{Budget, SolverConfig};
use rudoop::analysis::{Parallelism, Telemetry, TelemetryHandle};
use rudoop::ir::ClassHierarchy;
use rudoop::workloads::dacapo;

struct Run {
    workload: String,
    scale: usize,
    flavor: &'static str,
    threads: usize,
    seconds: f64,
    derivations: u64,
    imbalance: Option<f64>,
    speedup_vs_seq: f64,
    epoch_p50_us: Option<u64>,
    epoch_p95_us: Option<u64>,
    barrier_wait_frac: Option<f64>,
}

/// p50/p95 over the per-epoch durations and the fraction of epoch time
/// spent inside coordinator barriers (routing + bookkeeping), from the
/// run's telemetry spans. All `None` for sequential runs (no epochs).
fn epoch_profile(tele: &TelemetryHandle) -> (Option<u64>, Option<u64>, Option<f64>) {
    let Some(t) = tele.as_deref() else {
        return (None, None, None);
    };
    let spans = t.spans();
    let mut epochs: Vec<u64> = spans
        .iter()
        .filter(|s| s.name == "epoch")
        .map(|s| s.dur_us())
        .collect();
    if epochs.is_empty() {
        return (None, None, None);
    }
    epochs.sort_unstable();
    let pct = |q: f64| epochs[((epochs.len() - 1) as f64 * q).round() as usize];
    let barrier: u64 = spans
        .iter()
        .filter(|s| s.name == "barrier")
        .map(|s| s.dur_us())
        .sum();
    let total: u64 = epochs.iter().sum();
    let frac = if total > 0 {
        barrier as f64 / total as f64
    } else {
        0.0
    };
    (Some(pct(0.5)), Some(pct(0.95)), Some(frac))
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel.json".to_owned());
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut runs: Vec<Run> = Vec::new();

    let cases: Vec<(rudoop::workloads::WorkloadSpec, usize)> = vec![
        (dacapo::antlr(), 1),
        (dacapo::lusearch(), 1),
        (dacapo::pmd(), 1),
        (
            {
                let mut s = dacapo::antlr();
                s.scale = 4;
                s
            },
            4,
        ),
    ];

    for (spec, scale) in cases {
        let program = spec.build();
        let hierarchy = ClassHierarchy::new(&program);
        for (flavor, name) in [(Flavor::Insensitive, "insens"), (Flavor::OBJ2H, "2objH")] {
            let mut seq_time = 0.0;
            let mut seq_stats = None;
            for threads in [1usize, 2, 4] {
                let tele: TelemetryHandle = (threads > 1).then(|| Arc::new(Telemetry::new()));
                let config = SolverConfig {
                    budget: Budget::unlimited(),
                    parallelism: Parallelism::threads(threads),
                    telemetry: tele.clone(),
                    ..SolverConfig::default()
                };
                let start = Instant::now();
                let result = analyze_flavor(&program, &hierarchy, flavor, &config);
                let seconds = start.elapsed().as_secs_f64();
                assert!(
                    result.outcome.is_complete(),
                    "{}/{name} must complete",
                    spec.name
                );
                match &seq_stats {
                    None => {
                        seq_stats = Some(result.stats.canonical());
                        seq_time = seconds;
                    }
                    Some(reference) => assert_eq!(
                        reference,
                        &result.stats.canonical(),
                        "{}/{name}/t{threads}: engines disagree",
                        spec.name
                    ),
                }
                let imbalance = result.shard_work.as_ref().map(|work| {
                    let max = *work.iter().max().unwrap_or(&0) as f64;
                    let mean = work.iter().sum::<u64>() as f64 / work.len().max(1) as f64;
                    if mean > 0.0 {
                        max / mean
                    } else {
                        1.0
                    }
                });
                println!(
                    "{:<10} scale={} {:<7} threads={}  {:>8.3}s  {:>10} derivations  speedup {:.2}x",
                    spec.name,
                    scale,
                    name,
                    threads,
                    seconds,
                    result.stats.derivations,
                    seq_time / seconds
                );
                let (epoch_p50_us, epoch_p95_us, barrier_wait_frac) = epoch_profile(&tele);
                runs.push(Run {
                    workload: spec.name.clone(),
                    scale,
                    flavor: name,
                    threads,
                    seconds,
                    derivations: result.stats.derivations,
                    imbalance,
                    speedup_vs_seq: seq_time / seconds,
                    epoch_p50_us,
                    epoch_p95_us,
                    barrier_wait_frac,
                });
            }
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(
        json,
        "  \"note\": \"wall-clock of a single iteration per configuration; every sharded run \
         is asserted byte-identical (canonical stats) to its sequential reference before \
         timing is recorded; sustained speedup > 1 at threads > 1 requires host_cpus > 1\","
    );
    json.push_str("  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let imbalance = match r.imbalance {
            Some(x) => format!("{x:.3}"),
            None => "null".to_owned(),
        };
        let opt_u64 = |v: Option<u64>| v.map_or("null".to_owned(), |x| x.to_string());
        let frac = match r.barrier_wait_frac {
            Some(x) => format!("{x:.4}"),
            None => "null".to_owned(),
        };
        let _ = write!(
            json,
            "\n    {{\"workload\":\"{}\",\"scale\":{},\"flavor\":\"{}\",\"threads\":{},\
             \"seconds\":{:.4},\"derivations\":{},\"imbalance\":{},\"speedup_vs_seq\":{:.3},\
             \"epoch_p50_us\":{},\"epoch_p95_us\":{},\"barrier_wait_frac\":{}}}",
            r.workload,
            r.scale,
            r.flavor,
            r.threads,
            r.seconds,
            r.derivations,
            imbalance,
            r.speedup_vs_seq,
            opt_u64(r.epoch_p50_us),
            opt_u64(r.epoch_p95_us),
            frac
        );
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("\nwrote {out_path}");
}
