//! Summary-engine head-to-head benchmark: wall-clock, derivation count,
//! and the three precision clients for `insens`, `cutshortcut`,
//! `summaries`, `2objH`, and the two introspective mixes on all nine
//! DaCapo-shaped workloads (plus one scaled clone), written to
//! `BENCH_summaries.json`.
//!
//! Run with: `cargo run --release --example bench_summaries [out.json]`
//!
//! The point of the file is the paper-style comparison: how does the
//! bottom-up compositional engine (distill once, instantiate per call
//! site) stack up against both context cloning (`2objH`, introspective
//! mixes) and the flow-graph cuts (`cutshortcut`) on cost and precision?
//! `host_cpus` records the honest host capacity; every run here is
//! sequential, so the timings compare algorithms, not schedulers.

use std::fmt::Write as _;
use std::time::Instant;

use rudoop::analysis::clients::PrecisionMetrics;
use rudoop::analysis::driver::{analyze_flavor, analyze_introspective, Flavor};
use rudoop::analysis::heuristics::{HeuristicA, HeuristicB};
use rudoop::analysis::solver::SolverConfig;
use rudoop::analysis::summaries::SummaryTable;
use rudoop::ir::ClassHierarchy;
use rudoop::workloads::dacapo;

struct Run {
    workload: String,
    scale: usize,
    flavor: &'static str,
    seconds: f64,
    derivations: u64,
    poly_sites: usize,
    reachable_methods: usize,
    casts_may_fail: usize,
    distilled: Option<usize>,
    atoms: Option<usize>,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_summaries.json".to_owned());
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut runs: Vec<Run> = Vec::new();

    let mut cases: Vec<(rudoop::workloads::WorkloadSpec, usize)> =
        dacapo::all_nine().into_iter().map(|s| (s, 1)).collect();
    cases.push((
        {
            let mut s = dacapo::jython();
            s.scale = 2;
            s
        },
        2,
    ));

    for (spec, scale) in cases {
        let program = spec.build();
        let hierarchy = ClassHierarchy::new(&program);
        let config = SolverConfig::default();
        for flavor_name in [
            "insens",
            "cutshortcut",
            "summaries",
            "2objH",
            "introA",
            "introB",
        ] {
            let start = Instant::now();
            let result = match flavor_name {
                "introA" => {
                    analyze_introspective(
                        &program,
                        &hierarchy,
                        Flavor::OBJ2H,
                        &HeuristicA::default(),
                        &config,
                    )
                    .result
                }
                "introB" => {
                    analyze_introspective(
                        &program,
                        &hierarchy,
                        Flavor::OBJ2H,
                        &HeuristicB::default(),
                        &config,
                    )
                    .result
                }
                name => {
                    let flavor = Flavor::parse(name).expect("known flavor");
                    analyze_flavor(&program, &hierarchy, flavor, &config)
                }
            };
            let seconds = start.elapsed().as_secs_f64();
            assert!(
                result.outcome.is_complete(),
                "{}/{flavor_name} must complete",
                spec.name
            );
            let metrics = PrecisionMetrics::compute(&program, &hierarchy, &result);
            let table_stats = (flavor_name == "summaries")
                .then(|| SummaryTable::compute(&program, &hierarchy).stats);
            println!(
                "{:<10} scale={} {:<11}  {:>8.3}s  {:>10} derivations  poly={:<4} reach={:<5} casts={}",
                spec.name,
                scale,
                flavor_name,
                seconds,
                result.stats.derivations,
                metrics.polymorphic_call_sites,
                metrics.reachable_methods,
                metrics.casts_may_fail,
            );
            runs.push(Run {
                workload: spec.name.clone(),
                scale,
                flavor: flavor_name,
                seconds,
                derivations: result.stats.derivations,
                poly_sites: metrics.polymorphic_call_sites,
                reachable_methods: metrics.reachable_methods,
                casts_may_fail: metrics.casts_may_fail,
                distilled: table_stats.map(|s| s.distilled),
                atoms: table_stats.map(|s| s.atoms()),
            });
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(
        json,
        "  \"note\": \"wall-clock of a single sequential iteration per configuration \
         (the summaries time includes its bottom-up pre-analysis pass); introA/introB \
         are the two-pass introspective 2objH variants (their time includes the shared \
         insensitive first pass); distilled/atoms are the summary pass's table sizes\","
    );
    json.push_str("  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let distilled = r.distilled.map_or("null".to_owned(), |x| x.to_string());
        let atoms = r.atoms.map_or("null".to_owned(), |x| x.to_string());
        let _ = write!(
            json,
            "\n    {{\"workload\":\"{}\",\"scale\":{},\"flavor\":\"{}\",\"seconds\":{:.4},\
             \"derivations\":{},\"poly_sites\":{},\"reachable_methods\":{},\
             \"casts_may_fail\":{},\"distilled\":{},\"atoms\":{}}}",
            r.workload,
            r.scale,
            r.flavor,
            r.seconds,
            r.derivations,
            r.poly_sites,
            r.reachable_methods,
            r.casts_may_fail,
            distilled,
            atoms
        );
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("\nwrote {out_path}");
}
