//! Quickstart: write a program in the textual IL, run two analyses, and
//! inspect points-to sets.
//!
//! Run with: `cargo run --example quickstart`

use rudoop::analysis::driver::{analyze_flavor, Flavor};
use rudoop::analysis::solver::SolverConfig;
use rudoop::ir::{parse_program, validate, ClassHierarchy};

const SOURCE: &str = r#"
class Object
class Animal extends Object
class Dog extends Animal
class Cat extends Animal

method Dog.speak() {
  r = new Dog
  return r
}
method Cat.speak() {
  r = new Cat
  return r
}

# A polymorphic identity helper: insensitively it conflates every caller.
method Object.id(x) static {
  return x
}

method Object.main() static {
  d = new Dog
  c = new Cat
  rd = static Object.id(d)
  rc = static Object.id(c)
  rd.speak()
  dd = cast Dog rd
}

entry Object.main
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(SOURCE)?;
    validate(&program).map_err(|errs| format!("invalid program: {errs:?}"))?;
    let hierarchy = ClassHierarchy::new(&program);

    for flavor in [Flavor::Insensitive, Flavor::CallSite { k: 1, heap_k: 0 }] {
        let result = analyze_flavor(&program, &hierarchy, flavor, &SolverConfig::default());
        println!("=== {} ===", result.analysis);
        for (vid, var) in program.vars.iter() {
            if var.name == "rd" || var.name == "rc" {
                let pts: Vec<String> = result
                    .points_to(vid)
                    .iter()
                    .map(|&h| program.classes[program.allocs[h].class].name.clone())
                    .collect();
                println!("  {} may point to: {:?}", program.var_display(vid), pts);
            }
        }
        println!(
            "  {} contexts, {} derivations, reachable methods: {}",
            result.stats.contexts,
            result.stats.derivations,
            result.reachable_method_count()
        );
    }
    println!();
    println!("Insensitively `rd` may be a Dog or a Cat (the identity method mixes");
    println!("its callers); with one level of call-site context it is exactly a Dog.");
    Ok(())
}
