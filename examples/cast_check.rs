//! Cast-safety client: list the downcasts that an analysis cannot prove
//! safe — the paper's third precision metric ("reachable casts that may
//! fail"), here with per-cast reporting.
//!
//! Run with: `cargo run --example cast_check`

use rudoop::analysis::driver::{analyze_flavor, Flavor};
use rudoop::analysis::solver::SolverConfig;
use rudoop::ir::{parse_program, ClassHierarchy};

const SOURCE: &str = r#"
class Object
class Shape extends Object
class Circle extends Shape
class Square extends Shape

method Object.pick(a, b) static {
  return a
}

method Object.main() static {
  c = new Circle
  s = new Square
  # The analysis only sees that pick returns one of its arguments.
  x = static Object.pick(c, s)
  y = static Object.pick(s, c)
  cc = cast Circle x     # dynamically fine, statically: depends on precision
  ss = cast Square y
  sh = cast Shape x      # upcast: always provable
}

entry Object.main
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(SOURCE)?;
    let hierarchy = ClassHierarchy::new(&program);

    for flavor in [Flavor::Insensitive, Flavor::CALL2H] {
        let result = analyze_flavor(&program, &hierarchy, flavor, &SolverConfig::default());
        println!("=== {} ===", result.analysis);
        for (site, from, class) in program.cast_sites() {
            if !result.reachable_methods.contains(site.method) {
                continue;
            }
            let may_fail = result
                .points_to(from)
                .iter()
                .any(|&h| !hierarchy.is_subtype(program.allocs[h].class, class));
            let target = &program.classes[class].name;
            println!(
                "  cast to {:<7} at {}[{}]: {}",
                target,
                program.method_display(site.method),
                site.index,
                if may_fail { "MAY FAIL" } else { "proved safe" }
            );
        }
    }
    println!();
    println!("`pick` conflates both arguments insensitively, so even the upcast's");
    println!("siblings look dangerous; 2callH separates the two call sites and");
    println!("proves every cast (note: both analyses prove the upcast).");
    Ok(())
}
