//! Using the lint subsystem as a library: build a program, run the
//! insensitive pre-analysis, lint with a configured registry, and render.
//!
//! Run: `cargo run --example lint_demo`

use rudoop::analysis::solver::{analyze, SolverConfig};
use rudoop::analysis::Insensitive;
use rudoop::ir::{ClassHierarchy, ProgramBuilder};
use rudoop::lints::diagnostics::render;
use rudoop::lints::{Level, LintContext, LintRegistry};

fn main() {
    // A program with a guaranteed-failing cast and an unreachable method.
    let mut b = ProgramBuilder::new();
    let obj = b.class("Object", None);
    let dog = b.class("Dog", Some(obj));
    let stone = b.class("Stone", Some(obj));
    b.method(dog, "speak", &[], false);
    b.method(obj, "forgotten", &[], true);
    let main = b.method(obj, "main", &[], true);
    let s = b.var(main, "s");
    let d = b.var(main, "d");
    b.alloc(main, s, stone);
    b.cast(main, d, s, dog);
    b.vcall(main, None, d, "speak", &[]);
    b.entry(main);
    let program = b.finish();

    let hierarchy = ClassHierarchy::new(&program);
    let result = analyze(&program, &hierarchy, &Insensitive, &SolverConfig::default());

    // Promote the guaranteed-failure lint to an error, silence the hints.
    let mut registry = LintRegistry::with_defaults();
    registry.set_level("I001", Level::Deny);
    registry.set_level("I005", Level::Allow);

    let cx = LintContext {
        program: &program,
        hierarchy: &hierarchy,
        points_to: Some(&result),
        taint: None,
        races: None,
    };
    let diagnostics = registry.run(&cx);
    print!("{}", render(&program, &diagnostics));
    println!("{} finding(s)", diagnostics.len());
}
