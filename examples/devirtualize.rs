//! Devirtualization client: measure how many virtual call sites each
//! context flavor can prove monomorphic on a DaCapo-shaped workload —
//! the first precision metric of the paper's Figures 5–7.
//!
//! Run with: `cargo run --release --example devirtualize`

use rudoop::analysis::clients::polymorphic_call_sites;
use rudoop::analysis::driver::{analyze_flavor, Flavor};
use rudoop::analysis::solver::SolverConfig;
use rudoop::ir::{ClassHierarchy, InvokeKind};
use rudoop::workloads::dacapo;

fn main() {
    let spec = dacapo::pmd();
    let program = spec.build();
    let hierarchy = ClassHierarchy::new(&program);
    let config = SolverConfig::default();

    let virtual_sites = program
        .invokes
        .values()
        .filter(|i| matches!(i.kind, InvokeKind::Virtual { .. }))
        .count();
    println!(
        "benchmark {}: {} virtual call sites in total",
        spec.name, virtual_sites
    );
    println!();

    for flavor in [
        Flavor::Insensitive,
        Flavor::TYPE2H,
        Flavor::CALL2H,
        Flavor::OBJ2H,
    ] {
        let result = analyze_flavor(&program, &hierarchy, flavor, &config);
        let poly = polymorphic_call_sites(&program, &result);
        println!(
            "{:<8} cannot devirtualize {:>3} call sites  ({} derivations)",
            result.analysis, poly, result.stats.derivations
        );
    }
    println!();
    println!("Deeper context resolves the spurious polymorphism that the");
    println!("context-insensitive analysis reports on factory/identity flows.");
}
