//! The paper's headline demo: a benchmark where the full 2-object-sensitive
//! analysis blows through its budget, while introspective variants complete
//! with most of the precision — "a knob for users to select points in the
//! scalability/precision spectrum" (§4).
//!
//! Run with: `cargo run --release --example scalability_dial`

use rudoop::analysis::driver::{analyze_flavor, analyze_introspective_from, Flavor};
use rudoop::analysis::heuristics::{HeuristicA, HeuristicB, RefinementHeuristic};
use rudoop::analysis::solver::{Budget, SolverConfig};
use rudoop::analysis::{analyze, Insensitive, PrecisionMetrics};
use rudoop::ir::ClassHierarchy;
use rudoop::workloads::dacapo;

fn main() {
    let spec = dacapo::hsqldb();
    let program = spec.build();
    let hierarchy = ClassHierarchy::new(&program);
    let budget = 30_000_000;
    let config = SolverConfig {
        budget: Budget::derivations(budget),
        ..SolverConfig::default()
    };

    println!(
        "benchmark {}: {} instructions, budget {} derivations",
        spec.name,
        program.instruction_count(),
        budget
    );
    println!();

    // Baselines.
    let insens = analyze(&program, &hierarchy, &Insensitive, &config);
    report("insens", &program, &hierarchy, &insens);
    let full = analyze_flavor(&program, &hierarchy, Flavor::OBJ2H, &config);
    report("2objH", &program, &hierarchy, &full);

    // The dial: two introspective settings sharing the same first pass.
    for heuristic in [
        &HeuristicA::default() as &dyn RefinementHeuristic,
        &HeuristicB::default(),
    ] {
        let run = analyze_introspective_from(
            &program,
            &hierarchy,
            Flavor::OBJ2H,
            heuristic,
            &config,
            insens.clone(),
        );
        let name = format!("2objH-{}", heuristic.label());
        report(&name, &program, &hierarchy, &run.result);
        println!(
            "    (selection: {:.1}% of call sites, {:.1}% of objects NOT refined)",
            run.refinement_stats.call_site_pct(),
            run.refinement_stats.object_pct()
        );
    }
}

fn report(
    name: &str,
    program: &rudoop::Program,
    hierarchy: &ClassHierarchy,
    result: &rudoop::PointsToResult,
) {
    if result.outcome.is_complete() {
        let p = PrecisionMetrics::compute(program, hierarchy, result);
        println!(
            "{:<13} {:>10} derivations  {:>6.2}s   poly-calls {:>3}  may-fail casts {:>3}",
            name,
            result.stats.derivations,
            result.stats.duration.as_secs_f64(),
            p.polymorphic_call_sites,
            p.casts_may_fail
        );
    } else {
        println!("{name:<13} EXCEEDED BUDGET (the paper's non-terminating case)");
    }
}
