//! `rudoop` — command-line driver for the points-to analysis framework.
//!
//! ```text
//! rudoop <program.rdp | @benchmark> [options]
//!
//!   <program.rdp>        a program in the textual IL format
//!   @<name>              a built-in DaCapo-shaped benchmark (e.g. @pmd)
//!
//! options:
//!   --analysis <name>    insens | cutshortcut | summaries | 1call |
//!                        2callH | 1objH | 2objH | 2typeH | S2objH
//!                        (default: 2objH)
//!   --introspective <h>  A | B — run the two-pass introspective variant
//!   --ladder <spec>      run a degradation ladder (comma-separated rungs,
//!                        e.g. 2objH,introB:2objH,insens; `default`; or a
//!                        lone introB:2objH which expands to the canonical
//!                        ladder). Exit code: 0 complete / 3 degraded /
//!                        4 all rungs exhausted.
//!   --budget <n>         per-run derivation budget (default: unlimited)
//!   --max-bytes <n>      per-run modeled memory budget in bytes
//!   --timeout <secs>     per-run wall-clock deadline (watchdog-enforced
//!                        in ladder mode)
//!   --threads <n>        run the sharded parallel propagation engine on
//!                        `n` worker threads (default: 1 = the sequential
//!                        solver; results are byte-identical either way)
//!   --filter-casts       enable assign-cast filtering
//!   --stats              print the points-to distribution dashboard
//!   --pts <var>          print the points-to set of Class.method::var
//!   --dump               print projected var-points-to for all variables
//!   --trace <path>       write a Chrome trace-event file of the run
//!                        (load chrome://tracing or https://ui.perfetto.dev)
//!   --profile <path>     write the structured JSON profile
//!                        (schema `rudoop-profile-v1`)
//!   --telemetry          print the span/counter summary table on stderr
//!   --check-trace <path> validate a Chrome trace-event file written by
//!                        --trace and exit (0 valid / 1 invalid) — the
//!                        same checker CI runs on generated traces
//!
//! Stream contract: machine-readable documents (`--format json`, `--pts`,
//! `--dump`, `--stats`) are the only stdout payloads; progress text, the
//! ladder table, and telemetry summaries always go to stderr. Telemetry is
//! observational only — results are byte-identical with and without it.
//!
//! taint subcommand:
//!
//!   rudoop taint <program.rdp | @benchmark> --spec <file|builtin>
//!                [--format text|json] [options]
//!
//! Runs the points-to analysis under the supervisor (the `--ladder` spec,
//! or the canonical ladder for `--analysis`/`--introspective`), then the
//! taint client of the given spec on the completed rung. `builtin` (for
//! @benchmarks) switches the workload's taint battery on and uses its
//! canonical TaintKit spec. Leaks print with their shortest derivation
//! trace. When every rung exhausts, salvaged points-to facts are reported
//! but taint is *skipped* with a note — a partial leak list never
//! masquerades as a complete one. Exit contract is the ladder's:
//! 0 complete / 3 degraded / 4 exhausted.
//!
//! `--format json` prints a machine-readable leak report on stdout (the
//! ladder table moves to stderr so stdout stays a single JSON document);
//! the schema is documented on `rudoop::analysis::taint::render_json`.
//!
//! races subcommand:
//!
//!   rudoop races <program.rdp | @benchmark>
//!                [--format text|json] [options]
//!
//! Runs the points-to analysis under the supervisor (the `--ladder` spec,
//! or the canonical ladder for `--analysis`/`--introspective`), then the
//! data-race client on the completed rung: may-happen-in-parallel from the
//! context-sensitive thread-creation graph, lock sets resolved through
//! points-to, and deterministic `(field, access A, access B)` witnesses
//! with shortest per-thread traces. For `@benchmark` inputs the workload's
//! concurrency battery is switched on (the default recipes are
//! sequential). When every rung exhausts, race detection is *skipped* with
//! a note — a partial race list never masquerades as a complete one. Exit
//! contract is the ladder's: 0 complete / 3 degraded / 4 exhausted.
//!
//! `--format json` prints a machine-readable race report on stdout (the
//! ladder table moves to stderr); the schema is documented on
//! `rudoop::analysis::races::render_json`.
//!
//! query subcommand:
//!
//!   rudoop query --addr HOST:PORT [--kind stats|dump|pts|taint|races|lints]
//!                [--var VAR] [--format text|json] [--ladder SPEC]
//!                [--budget N] [--max-bytes N] [--timeout-ms N]
//!                [--retries N] [--retry-base-ms N] [--retry-cap-ms N]
//!                [--retry-seed N] [--ping] [--shutdown]
//!
//! Sends one query to a resident `rudoopd` daemon. `busy` sheds and
//! transport failures retry with bounded exponential backoff and
//! SplitMix64 jitter (deterministic under `--retry-seed`), floored at
//! the server's `retry_after_ms` hint. The response document prints on
//! stdout byte-identical to the batch CLI's output for the same query.
//! Exit contract: 0 complete / 3 degraded / 4 exhausted / 1 error /
//! 5 shed on every retry.

use std::process::ExitCode;
use std::time::Duration;

use rudoop::analysis::driver::{analyze_flavor, analyze_introspective, Flavor};
use rudoop::analysis::heuristics::{HeuristicA, HeuristicB, RefinementHeuristic};
use rudoop::analysis::races::supervised_races_traced;
use rudoop::analysis::solver::{Budget, SolverConfig};
use rudoop::analysis::supervisor::{supervise, LadderSpec, SupervisorConfig};
use rudoop::analysis::taint::supervised_taint_traced;
use rudoop::analysis::telemetry::span_opt;
use rudoop::analysis::Parallelism;
use rudoop::analysis::{
    render_supervised, PrecisionMetrics, ResultStats, Telemetry, TelemetryHandle,
};
use rudoop::ir::{validate, ClassHierarchy, Program, TaintSpec};

struct Options {
    input: String,
    taint_cmd: bool,
    races_cmd: bool,
    spec: Option<String>,
    flavor: Flavor,
    introspective: Option<char>,
    ladder: Option<LadderSpec>,
    budget: Option<u64>,
    max_bytes: Option<u64>,
    timeout: Option<Duration>,
    threads: usize,
    json: bool,
    filter_casts: bool,
    stats: bool,
    pts: Vec<String>,
    dump: bool,
    trace: Option<String>,
    profile: Option<String>,
    telemetry: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: rudoop [taint|races] <program.rdp | @benchmark> [--analysis NAME] \
         [--introspective A|B] [--ladder SPEC] [--spec FILE|builtin] \
         [--format text|json] [--budget N] [--max-bytes N] \
         [--timeout SECS] [--threads N] [--filter-casts] [--stats] \
         [--pts Class.method::var] [--dump] [--trace PATH] [--profile PATH] \
         [--telemetry]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        input: String::new(),
        taint_cmd: false,
        races_cmd: false,
        spec: None,
        flavor: Flavor::OBJ2H,
        introspective: None,
        ladder: None,
        budget: None,
        max_bytes: None,
        timeout: None,
        threads: 1,
        json: false,
        filter_casts: false,
        stats: false,
        pts: Vec::new(),
        dump: false,
        trace: None,
        profile: None,
        telemetry: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--analysis" => {
                let name = args.next().unwrap_or_else(|| usage());
                opts.flavor = Flavor::parse(&name).unwrap_or_else(|err| {
                    eprintln!("{err}");
                    usage()
                });
            }
            "--introspective" => {
                let h = args.next().unwrap_or_else(|| usage());
                match h.as_str() {
                    "A" => opts.introspective = Some('A'),
                    "B" => opts.introspective = Some('B'),
                    _ => usage(),
                }
            }
            "--ladder" => {
                let spec = args.next().unwrap_or_else(|| usage());
                opts.ladder = Some(LadderSpec::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("bad ladder: {e}");
                    usage()
                }));
            }
            "--budget" => {
                let n = args.next().unwrap_or_else(|| usage());
                opts.budget = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            "--max-bytes" => {
                let n = args.next().unwrap_or_else(|| usage());
                opts.max_bytes = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            "--timeout" => {
                let secs = args.next().unwrap_or_else(|| usage());
                let secs: f64 = secs.parse().unwrap_or_else(|_| usage());
                if !secs.is_finite() || secs <= 0.0 {
                    usage();
                }
                opts.timeout = Some(Duration::from_secs_f64(secs));
            }
            "--threads" => {
                let n = args.next().unwrap_or_else(|| usage());
                opts.threads = n.parse().unwrap_or_else(|_| usage());
                if opts.threads == 0 {
                    eprintln!("--threads must be at least 1");
                    usage();
                }
            }
            "--format" => {
                let fmt = args.next().unwrap_or_else(|| usage());
                match fmt.as_str() {
                    "text" => opts.json = false,
                    "json" => opts.json = true,
                    _ => {
                        eprintln!("unknown format {fmt:?} (expected text or json)");
                        usage();
                    }
                }
            }
            "--spec" => opts.spec = Some(args.next().unwrap_or_else(|| usage())),
            "--check-trace" => {
                let path = args.next().unwrap_or_else(|| usage());
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: {path}: {e}");
                        std::process::exit(1);
                    }
                };
                match rudoop::validate_chrome_trace(&text) {
                    Ok(check) => {
                        eprintln!(
                            "{path}: valid — {} events, {} spans, {} instants, {} samples, \
                             {} span names, max ts {}us",
                            check.events,
                            check.spans,
                            check.instants,
                            check.samples,
                            check.span_names.len(),
                            check.max_ts_us
                        );
                        std::process::exit(0);
                    }
                    Err(e) => {
                        eprintln!("error: {path}: invalid trace: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--trace" => opts.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--profile" => opts.profile = Some(args.next().unwrap_or_else(|| usage())),
            "--telemetry" => opts.telemetry = true,
            "--filter-casts" => opts.filter_casts = true,
            "--stats" => opts.stats = true,
            "--pts" => opts.pts.push(args.next().unwrap_or_else(|| usage())),
            "--dump" => opts.dump = true,
            "--help" | "-h" => usage(),
            "taint" if !opts.taint_cmd && !opts.races_cmd && opts.input.is_empty() => {
                opts.taint_cmd = true;
            }
            "races" if !opts.taint_cmd && !opts.races_cmd && opts.input.is_empty() => {
                opts.races_cmd = true;
            }
            other if opts.input.is_empty() && !other.starts_with('-') => {
                opts.input = other.to_owned();
            }
            other => {
                eprintln!("unexpected argument {other:?}");
                usage();
            }
        }
    }
    if opts.input.is_empty() {
        usage();
    }
    if opts.taint_cmd && opts.spec.is_none() {
        eprintln!("the taint subcommand needs --spec FILE (or --spec builtin for @benchmarks)");
        usage();
    }
    if !opts.taint_cmd && opts.spec.is_some() {
        eprintln!("--spec only makes sense with the taint subcommand");
        usage();
    }
    if !opts.taint_cmd && !opts.races_cmd && opts.json {
        eprintln!("--format json only makes sense with the taint or races subcommand");
        usage();
    }
    opts
}

/// Loads the program plus, for `--spec builtin` on a `@benchmark`, the
/// workload's canonical TaintKit spec (switching the taint battery on in
/// the build, since the default recipes omit it). The races subcommand
/// switches the workload's concurrency battery on the same way — the
/// default recipes are sequential, so a race run over a stock benchmark
/// would be vacuous.
use rudoop::cli::load_program;

/// The `query` subcommand: one request against a resident `rudoopd`,
/// with bounded exponential backoff and SplitMix64 jitter on `busy`
/// sheds and transport failures. The response document prints on stdout
/// byte-identical to the batch CLI's output for the same query; status
/// goes to stderr. Exit contract: the daemon's 0/3/4 verdict for
/// answered queries, 1 for errors, 5 when every retry was shed.
fn run_query() -> ExitCode {
    use rudoop::analysis::service::client::{query_with_retry, ClientError, RetryPolicy};
    use rudoop::analysis::service::protocol::{BudgetSpec, DocFormat, QueryRequest, Request};

    fn query_usage() -> ! {
        eprintln!(
            "usage: rudoop query --addr HOST:PORT [--kind stats|dump|pts|taint|races|lints] \
             [--var Class.method::var] [--format text|json] [--ladder SPEC] [--budget N] \
             [--max-bytes N] [--timeout-ms N] [--retries N] [--retry-base-ms N] \
             [--retry-cap-ms N] [--retry-seed N] [--ping] [--shutdown]"
        );
        std::process::exit(2);
    }

    let mut args = std::env::args().skip(2);
    let mut addr: Option<String> = None;
    let mut query = QueryRequest {
        kind: "stats".to_owned(),
        var: None,
        format: DocFormat::Text,
        ladder: None,
        budget: BudgetSpec::default(),
    };
    let mut policy = RetryPolicy::default();
    let mut op: Option<Request> = None;
    while let Some(arg) = args.next() {
        let mut next = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{arg} needs {what}");
                query_usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = Some(next("HOST:PORT")),
            "--kind" => query.kind = next("KIND"),
            "--var" => query.var = Some(next("VAR")),
            "--format" => match next("text|json").as_str() {
                "text" => query.format = DocFormat::Text,
                "json" => query.format = DocFormat::Json,
                other => {
                    eprintln!("unknown format {other:?}");
                    query_usage()
                }
            },
            "--ladder" => query.ladder = Some(next("SPEC")),
            "--budget" => {
                query.budget.derivations = Some(next("N").parse().unwrap_or_else(|_| query_usage()))
            }
            "--max-bytes" => {
                query.budget.bytes = Some(next("N").parse().unwrap_or_else(|_| query_usage()))
            }
            "--timeout-ms" => {
                query.budget.ms = Some(next("N").parse().unwrap_or_else(|_| query_usage()))
            }
            "--retries" => policy.retries = next("N").parse().unwrap_or_else(|_| query_usage()),
            "--retry-base-ms" => {
                policy.base_ms = next("N").parse().unwrap_or_else(|_| query_usage())
            }
            "--retry-cap-ms" => policy.cap_ms = next("N").parse().unwrap_or_else(|_| query_usage()),
            "--retry-seed" => policy.seed = next("N").parse().unwrap_or_else(|_| query_usage()),
            "--ping" => op = Some(Request::Ping),
            "--shutdown" => op = Some(Request::Shutdown),
            "--help" | "-h" => query_usage(),
            other => {
                eprintln!("unexpected argument {other:?}");
                query_usage()
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("--addr is required");
        query_usage()
    };
    let request = op.unwrap_or(Request::Query(query));
    match query_with_retry(&addr, &request, &policy, &None) {
        Ok(outcome) => {
            if outcome.attempts > 1 {
                eprintln!(
                    "retried {} time(s), backoff {:?} ms",
                    outcome.attempts - 1,
                    outcome.delays_ms
                );
            }
            use rudoop::analysis::service::protocol::Response;
            match outcome.response {
                Response::Ok => {
                    eprintln!("ok");
                    ExitCode::SUCCESS
                }
                Response::Doc {
                    status,
                    exit_code,
                    analysis,
                    doc,
                } => {
                    print!("{doc}");
                    eprintln!(
                        "status: {status} ({})",
                        analysis.as_deref().unwrap_or("no completed rung")
                    );
                    ExitCode::from(exit_code)
                }
                Response::Error { message } => {
                    eprintln!("error: {message}");
                    ExitCode::FAILURE
                }
                Response::Busy { .. } => unreachable!("busy responses are retried"),
            }
        }
        Err(e @ ClientError::Overloaded { .. }) => {
            eprintln!("error: {e}");
            ExitCode::from(5)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    if std::env::args().nth(1).as_deref() == Some("query") {
        return run_query();
    }
    let opts = parse_args();
    let tele: TelemetryHandle = (opts.trace.is_some() || opts.profile.is_some() || opts.telemetry)
        .then(|| std::sync::Arc::new(Telemetry::new()));
    let builtin_taint = opts.taint_cmd && opts.spec.as_deref() == Some("builtin");
    let parse_span = span_opt(&tele, "parse");
    if let Some(s) = &parse_span {
        s.arg("input", &opts.input);
    }
    let (program, builtin_spec) = match load_program(&opts.input, builtin_taint, opts.races_cmd) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(errs) = validate(&program) {
        eprintln!("error: invalid program:");
        for e in errs {
            eprintln!("  {e}");
        }
        return ExitCode::FAILURE;
    }
    drop(parse_span);
    let hierarchy = ClassHierarchy::new(&program);
    let mut budget = Budget::unlimited();
    if let Some(n) = opts.budget {
        budget = budget.and_derivations(n);
    }
    if let Some(n) = opts.max_bytes {
        budget = budget.and_bytes(n);
    }
    if let Some(d) = opts.timeout {
        budget = budget.and_duration(d);
    }
    let config = SolverConfig {
        budget,
        filter_casts: opts.filter_casts,
        // The taint and race clients walk per-context points-to facts.
        record_contexts: opts.taint_cmd || opts.races_cmd,
        parallelism: Parallelism::threads(opts.threads),
        telemetry: tele.clone(),
        ..SolverConfig::default()
    };

    let code = run(&program, &hierarchy, builtin_spec, budget, config, &opts);
    if let Err(e) = flush_telemetry(&tele, &opts) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    code
}

/// Dispatches to the taint subcommand, ladder mode, or a plain single run.
fn run(
    program: &Program,
    hierarchy: &ClassHierarchy,
    builtin_spec: Option<TaintSpec>,
    budget: Budget,
    config: SolverConfig,
    opts: &Options,
) -> ExitCode {
    let builtin_taint = opts.taint_cmd && opts.spec.as_deref() == Some("builtin");
    if opts.taint_cmd {
        let spec = match &opts.spec {
            Some(_) if builtin_taint => builtin_spec.expect("builtin spec was loaded"),
            Some(path) => {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match TaintSpec::parse(&text, program) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => unreachable!("parse_args requires --spec with taint"),
        };
        return run_taint(program, hierarchy, &spec, budget, config, opts);
    }
    if opts.races_cmd {
        return run_races(program, hierarchy, budget, config, opts);
    }

    if let Some(ladder) = opts.ladder.clone() {
        return run_ladder(program, hierarchy, ladder, budget, config, opts);
    }

    let result = match opts.introspective {
        None => analyze_flavor(program, hierarchy, opts.flavor, &config),
        Some(which) => {
            let heuristic: Box<dyn RefinementHeuristic> = if which == 'A' {
                Box::new(HeuristicA::default())
            } else {
                Box::new(HeuristicB::default())
            };
            let run =
                analyze_introspective(program, hierarchy, opts.flavor, heuristic.as_ref(), &config);
            eprintln!(
                "selection: {:.1}% of call sites, {:.1}% of objects not refined",
                run.refinement_stats.call_site_pct(),
                run.refinement_stats.object_pct()
            );
            run.result
        }
    };

    eprintln!(
        "analysis {}: {} in {:.2}s, {} derivations, {} contexts",
        result.analysis,
        if result.outcome.is_complete() {
            "completed"
        } else {
            "BUDGET EXHAUSTED"
        },
        result.stats.duration.as_secs_f64(),
        result.stats.derivations,
        result.stats.contexts,
    );
    let pm = PrecisionMetrics::compute(program, hierarchy, &result);
    eprintln!(
        "precision: {} polymorphic virtual call sites, {} reachable methods, {} casts may fail",
        pm.polymorphic_call_sites, pm.reachable_methods, pm.casts_may_fail
    );
    print_reports(program, hierarchy, &result, opts);
    ExitCode::SUCCESS
}

/// The `taint` subcommand: supervise the points-to analysis down the
/// ladder, then run the taint client on the completed rung. An exhausted
/// ladder skips taint with a note (the 0/3/4 exit contract is the
/// supervisor's).
fn run_taint(
    program: &Program,
    hierarchy: &ClassHierarchy,
    spec: &TaintSpec,
    budget: Budget,
    solver: SolverConfig,
    opts: &Options,
) -> ExitCode {
    let ladder = match (opts.ladder.clone(), opts.introspective) {
        (Some(l), _) => l,
        (None, Some(which)) => {
            let rung = format!("intro{which}:{}", opts.flavor.spec_name());
            LadderSpec::parse(&rung).expect("canonical introspective rung parses")
        }
        (None, None) => LadderSpec::default_for(opts.flavor),
    };
    let cfg = SupervisorConfig {
        ladder,
        budget,
        solver,
        watchdog: opts.timeout.is_some(),
        warm_first_pass: None,
        warm_summaries: None,
    };
    let tele = cfg.solver.telemetry.clone();
    let run = supervise(program, hierarchy, &cfg);
    if opts.json {
        // Keep stdout a single JSON document; the ladder table is still
        // useful context, so it moves to stderr.
        eprint!("{}", render_supervised(&run));
        let taint = supervised_taint_traced(program, spec, &run, &tele);
        print!("{}", rudoop::analysis::taint::render_json(program, &taint));
        return ExitCode::from(run.exit_code());
    }
    eprint!("{}", render_supervised(&run));
    let taint = supervised_taint_traced(program, spec, &run, &tele);
    print!("{}", rudoop::analysis::taint::render_text(program, &taint));
    ExitCode::from(run.exit_code())
}

/// The `races` subcommand: supervise the points-to analysis down the
/// ladder, then run the data-race client on the completed rung. An
/// exhausted ladder skips race detection with a note (the 0/3/4 exit
/// contract is the supervisor's).
fn run_races(
    program: &Program,
    hierarchy: &ClassHierarchy,
    budget: Budget,
    solver: SolverConfig,
    opts: &Options,
) -> ExitCode {
    let ladder = match (opts.ladder.clone(), opts.introspective) {
        (Some(l), _) => l,
        (None, Some(which)) => {
            let rung = format!("intro{which}:{}", opts.flavor.spec_name());
            LadderSpec::parse(&rung).expect("canonical introspective rung parses")
        }
        (None, None) => LadderSpec::default_for(opts.flavor),
    };
    let cfg = SupervisorConfig {
        ladder,
        budget,
        solver,
        watchdog: opts.timeout.is_some(),
        warm_first_pass: None,
        warm_summaries: None,
    };
    let tele = cfg.solver.telemetry.clone();
    let run = supervise(program, hierarchy, &cfg);
    // Keep stdout a single document either way; the ladder table is still
    // useful context, so it moves to stderr.
    eprint!("{}", render_supervised(&run));
    let races = supervised_races_traced(program, &run, &tele);
    if opts.json {
        print!("{}", rudoop::analysis::races::render_json(program, &races));
        return ExitCode::from(run.exit_code());
    }
    print!("{}", rudoop::analysis::races::render_text(&races));
    ExitCode::from(run.exit_code())
}

/// Runs the degradation ladder and maps the verdict onto the exit-code
/// contract: 0 = complete, 3 = degraded, 4 = all rungs exhausted.
fn run_ladder(
    program: &Program,
    hierarchy: &ClassHierarchy,
    ladder: LadderSpec,
    budget: Budget,
    solver: SolverConfig,
    opts: &Options,
) -> ExitCode {
    let cfg = SupervisorConfig {
        ladder,
        budget,
        solver,
        watchdog: opts.timeout.is_some(),
        warm_first_pass: None,
        warm_summaries: None,
    };
    let run = supervise(program, hierarchy, &cfg);
    eprint!("{}", render_supervised(&run));
    if let Some(result) = run.best_result() {
        let pm = PrecisionMetrics::compute(program, hierarchy, result);
        eprintln!(
            "precision ({}): {} polymorphic virtual call sites, {} reachable methods, \
             {} casts may fail",
            result.analysis, pm.polymorphic_call_sites, pm.reachable_methods, pm.casts_may_fail
        );
        print_reports(program, hierarchy, result, opts);
    }
    ExitCode::from(run.exit_code())
}

/// Writes the `--trace` / `--profile` sinks and prints the `--telemetry`
/// summary table (on stderr, per the stream contract).
fn flush_telemetry(tele: &TelemetryHandle, opts: &Options) -> Result<(), String> {
    let Some(t) = tele.as_deref() else {
        return Ok(());
    };
    if let Some(path) = &opts.trace {
        std::fs::write(path, t.chrome_trace()).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = &opts.profile {
        std::fs::write(path, t.profile_json()).map_err(|e| format!("{path}: {e}"))?;
    }
    if opts.telemetry {
        eprint!("{}", t.summary());
    }
    Ok(())
}

/// The `--stats` / `--pts` / `--dump` reports over one result.
fn print_reports(
    program: &Program,
    _hierarchy: &ClassHierarchy,
    result: &rudoop::PointsToResult,
    opts: &Options,
) {
    if opts.stats {
        println!();
        print!(
            "{}",
            ResultStats::compute(program, result, 10).render(program)
        );
    }

    for query in &opts.pts {
        match rudoop::analysis::stats::render_pts(program, result, query) {
            Some(doc) => print!("{doc}"),
            None => eprintln!("no variable matches {query:?}"),
        }
    }

    if opts.dump {
        print!("{}", rudoop::analysis::stats::render_dump(program, result));
    }
}
