//! `rudoopd` — the resident analysis daemon.
//!
//! ```text
//! rudoopd <program.rdp | @benchmark> [options]
//!
//! options:
//!   --listen HOST:PORT   bind address (default 127.0.0.1:0 — port 0
//!                        picks a free port; read it from --port-file
//!                        or the startup line on stderr)
//!   --port-file PATH     write the bound address to PATH once listening
//!   --workers N          concurrent analysis slots (default 2)
//!   --queue N            waiting slots past the workers (default 4);
//!                        arrivals past workers+queue are shed with a
//!                        typed busy response and a retry_after_ms hint
//!   --analysis NAME      flavor whose canonical ladder serves queries
//!                        without an explicit ladder (default 2objH)
//!   --ladder SPEC        default degradation ladder override
//!   --threads N          solver threads per request (default 1)
//!   --filter-casts       enable assign-cast filtering
//!   --taint-spec F       taint spec file, or `builtin` for @benchmarks
//!   --races              switch a @benchmark's concurrency battery on
//!   --inject SPEC        arm a deterministic fault (repeatable):
//!                        drop-after-bytes=N[@req=K] | stall-ms=T@req=K |
//!                        garbage-frame@req=K | cancel-mid-rung@req=K
//!   --trace PATH         write a Chrome trace of the service spans
//!                        (accept/queue/rung/respond lanes) at shutdown
//!   --telemetry          print the telemetry summary at shutdown
//!
//! The daemon loads and interns the program once, warms the insensitive
//! first pass, and serves queries over a length-prefixed JSON protocol
//! on TCP localhost. The first query whose ladder contains a `summaries`
//! rung additionally computes and caches the bottom-up summary table —
//! the warm *context-sensitive* artifact — so repeated summaries queries
//! skip the pre-analysis (observable as `service.summary_cache_hits`). Every request runs under the supervisor's
//! degradation ladder with its own budget and a cancel token wired to
//! client disconnect; responses carry the 0/3/4 verdict as a
//! `complete|degraded|exhausted` status and a document byte-identical
//! to the batch CLI's stdout for the same query. Stop it with
//! `rudoop query --addr ... --shutdown`.
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use rudoop::analysis::driver::Flavor;
use rudoop::analysis::service::faults::FaultPlan;
use rudoop::analysis::service::protocol::DocFormat;
use rudoop::analysis::service::server::Server;
use rudoop::analysis::service::{QueryHandler, ServiceConfig, ServiceState};
use rudoop::analysis::supervisor::LadderSpec;
use rudoop::analysis::{Parallelism, PointsToResult, Telemetry, TelemetryHandle};
use rudoop::ir::{validate, ClassHierarchy, Program, TaintSpec};
use rudoop::{LintContext, LintRegistry};

struct Options {
    input: String,
    listen: String,
    port_file: Option<String>,
    workers: usize,
    queue: usize,
    flavor: Flavor,
    ladder: Option<LadderSpec>,
    threads: usize,
    filter_casts: bool,
    taint_spec: Option<String>,
    races: bool,
    inject: Vec<String>,
    trace: Option<String>,
    telemetry: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: rudoopd <program.rdp | @benchmark> [--listen HOST:PORT] [--port-file PATH] \
         [--workers N] [--queue N] [--analysis NAME] [--ladder SPEC] [--threads N] \
         [--filter-casts] [--taint-spec FILE|builtin] [--races] [--inject SPEC]... \
         [--trace PATH] [--telemetry]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        input: String::new(),
        listen: "127.0.0.1:0".to_owned(),
        port_file: None,
        workers: 2,
        queue: 4,
        flavor: Flavor::OBJ2H,
        ladder: None,
        threads: 1,
        filter_casts: false,
        taint_spec: None,
        races: false,
        inject: Vec::new(),
        trace: None,
        telemetry: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => opts.listen = args.next().unwrap_or_else(|| usage()),
            "--port-file" => opts.port_file = Some(args.next().unwrap_or_else(|| usage())),
            "--workers" => {
                opts.workers = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--queue" => {
                opts.queue = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--analysis" => {
                let name = args.next().unwrap_or_else(|| usage());
                opts.flavor = Flavor::parse(&name).unwrap_or_else(|err| {
                    eprintln!("{err}");
                    usage()
                });
            }
            "--ladder" => {
                let spec = args.next().unwrap_or_else(|| usage());
                opts.ladder = Some(LadderSpec::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("bad ladder: {e}");
                    usage()
                }));
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--filter-casts" => opts.filter_casts = true,
            "--taint-spec" => opts.taint_spec = Some(args.next().unwrap_or_else(|| usage())),
            "--races" => opts.races = true,
            "--inject" => opts.inject.push(args.next().unwrap_or_else(|| usage())),
            "--trace" => opts.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--telemetry" => opts.telemetry = true,
            "--help" | "-h" => usage(),
            other if opts.input.is_empty() && !other.starts_with('-') => {
                opts.input = other.to_owned();
            }
            other => {
                eprintln!("unexpected argument {other:?}");
                usage();
            }
        }
    }
    if opts.input.is_empty() {
        usage();
    }
    opts
}

/// The `lints` query: the full default lint suite over the warm program
/// and the request's completed points-to result. Registered here — the
/// lint crate sits above the analysis core, so the core's service module
/// cannot depend on it.
struct LintsHandler;

impl QueryHandler for LintsHandler {
    fn handle(
        &self,
        program: &Program,
        hierarchy: &ClassHierarchy,
        result: &PointsToResult,
        format: DocFormat,
    ) -> Result<String, String> {
        let cx = LintContext {
            program,
            hierarchy,
            points_to: Some(result),
            taint: None,
            races: None,
        };
        let diags = LintRegistry::with_defaults().run(&cx);
        Ok(match format {
            DocFormat::Json => rudoop::lints::render_json(program, &diags),
            DocFormat::Text => rudoop::lints::render(program, &diags),
        })
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let builtin_taint = opts.taint_spec.as_deref() == Some("builtin");
    let (program, builtin_spec) =
        match rudoop::cli::load_program(&opts.input, builtin_taint, opts.races) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
    if let Err(errs) = validate(&program) {
        eprintln!("error: invalid program:");
        for e in errs {
            eprintln!("  {e}");
        }
        return ExitCode::FAILURE;
    }
    let taint_spec: Option<TaintSpec> = match &opts.taint_spec {
        Some(_) if builtin_taint => builtin_spec,
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match TaintSpec::parse(&text, &program) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let faults = match FaultPlan::parse(&opts.inject) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("error: bad --inject: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !faults.is_empty() {
        eprintln!(
            "rudoopd: FAULT INJECTION ARMED ({} spec(s))",
            opts.inject.len()
        );
    }

    let tele: TelemetryHandle =
        (opts.trace.is_some() || opts.telemetry).then(|| Arc::new(Telemetry::new()));
    let config = ServiceConfig {
        workers: opts.workers,
        queue: opts.queue,
        flavor: opts.flavor,
        ladder: opts.ladder.clone(),
        filter_casts: opts.filter_casts,
        parallelism: Parallelism::threads(opts.threads),
        taint_spec,
        faults,
        telemetry: tele.clone(),
    };
    let mut state = ServiceState::new(program, config);
    state.register_handler("lints", Box::new(LintsHandler));
    let warm = state.warm_first_pass().is_some();
    let server = match Server::bind(Arc::new(state), &opts.listen) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: bind {}: {e}", opts.listen);
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &opts.port_file {
        if let Err(e) = std::fs::write(path, addr.to_string()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "rudoopd: listening on {addr} ({}, warm first pass: {}; \
         summary table cached lazily on the first `summaries` query)",
        opts.input,
        if warm { "ready" } else { "unavailable" },
    );

    server.run();

    if let Some(t) = tele.as_deref() {
        if let Some(path) = &opts.trace {
            if let Err(e) = std::fs::write(path, t.chrome_trace()) {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if opts.telemetry {
            eprint!("{}", t.summary());
        }
    }
    eprintln!("rudoopd: shut down");
    ExitCode::SUCCESS
}
