//! `rudoop-lint` — diagnostics and lints over IL programs, backed by
//! points-to facts.
//!
//! ```text
//! rudoop-lint <program.rud | @benchmark> [options]
//!
//!   <program.rud>        a program in the textual IL format
//!   @<name>              a built-in DaCapo-shaped benchmark (e.g. @pmd)
//!
//! options:
//!   --analysis <name>    points-to policy backing the tier-2 lints:
//!                        insens | cutshortcut | summaries | 1call |
//!                        2callH | 1objH | 2objH | 2typeH | S2objH
//!                        (default: insens)
//!   --no-points-to       skip the analysis; run only tier-1 lints
//!   --timeout <secs>     wall-clock deadline for the backing analysis
//!                        (watchdog-cancelled). If it fires, tier-2 lints
//!                        are skipped and the exit code is 2.
//!   --threads <n>        worker threads for the backing analysis
//!                        (default 1; lint results are byte-identical at
//!                        any thread count)
//!   --taint-spec <file>  taint sources/sinks/sanitizers (see
//!                        `rudoop_ir::TaintSpec` for the grammar); enables
//!                        the T001–T004 taint lints. For @benchmarks the
//!                        special value `builtin` uses the workload's
//!                        canonical TaintKit spec.
//!   --races              run the data-race client on the points-to result
//!                        and enable the R001–R004 race lints (requires
//!                        the backing analysis, i.e. not --no-points-to)
//!   --format <fmt>       text (default) or json — a stable array of
//!                        {code, level, span, message, location, notes}
//!   --allow <CODE>       suppress a lint (repeatable)
//!   --warn <CODE>        report a lint at its default severity (default)
//!   --deny <CODE>        escalate a lint to an error (repeatable)
//!   --list               list all lints with codes and exit
//!   --trace <path>       write a Chrome trace-event file of the run
//!   --profile <path>     write the structured JSON profile
//!   --telemetry          print the span/counter summary table on stderr
//!
//! Stream contract: the rendered diagnostics (text or `--format json`) are
//! the only stdout payload; the trailing per-file summary line, degradation
//! notes, and telemetry summaries go to stderr.
//!
//! exit code: 0 — no errors (warnings and notes allowed);
//!            1 — validity errors or denied lint findings;
//!            2 — usage, I/O or parse failure, or the backing analysis
//!                degraded (timed out / exhausted) before tier-2 lints
//!                could run.
//! ```
//!
//! Well-formedness violations (`E` codes) and lint findings
//! (`L`/`I`/`T`/`R` codes) are rendered uniformly, sorted by source
//! position.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rudoop::analysis::driver::{analyze_flavor, Flavor};
use rudoop::analysis::solver::{Budget, CancelToken, SolverConfig};
use rudoop::analysis::taint::analyze_taint_traced;
use rudoop::analysis::telemetry::span_opt;
use rudoop::analysis::{Parallelism, Telemetry, TelemetryHandle};
use rudoop::ir::{parse_program, ClassHierarchy, Program, TaintSpec};
use rudoop::lints::diagnostics::{has_errors, render, render_json, validate_diagnostics};
use rudoop::lints::{Level, LintContext, LintRegistry};
use rudoop::workloads::dacapo;

struct Options {
    input: String,
    flavor: Flavor,
    points_to: bool,
    timeout: Option<Duration>,
    threads: usize,
    levels: Vec<(String, Level)>,
    list: bool,
    taint_spec: Option<String>,
    races: bool,
    json: bool,
    trace: Option<String>,
    profile: Option<String>,
    telemetry: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: rudoop-lint <program.rud | @benchmark> [--analysis NAME] \
         [--no-points-to] [--timeout SECS] [--threads N] \
         [--taint-spec FILE|builtin] [--races] \
         [--format text|json] [--allow CODE] [--warn CODE] \
         [--deny CODE] [--list] [--trace PATH] [--profile PATH] [--telemetry]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        input: String::new(),
        flavor: Flavor::Insensitive,
        points_to: true,
        timeout: None,
        threads: 1,
        levels: Vec::new(),
        list: false,
        taint_spec: None,
        races: false,
        json: false,
        trace: None,
        profile: None,
        telemetry: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--analysis" => {
                let name = args.next().unwrap_or_else(|| usage());
                opts.flavor = Flavor::parse(&name).unwrap_or_else(|err| {
                    eprintln!("{err}");
                    usage()
                });
            }
            "--no-points-to" => opts.points_to = false,
            "--timeout" => {
                let secs = args.next().unwrap_or_else(|| usage());
                let secs: f64 = secs.parse().unwrap_or_else(|_| usage());
                if !secs.is_finite() || secs <= 0.0 {
                    usage();
                }
                opts.timeout = Some(Duration::from_secs_f64(secs));
            }
            "--threads" => {
                let n = args.next().unwrap_or_else(|| usage());
                opts.threads = n.parse().unwrap_or_else(|_| usage());
                if opts.threads == 0 {
                    eprintln!("--threads must be at least 1");
                    usage();
                }
            }
            "--allow" => {
                let code = args.next().unwrap_or_else(|| usage());
                opts.levels.push((code, Level::Allow));
            }
            "--warn" => {
                let code = args.next().unwrap_or_else(|| usage());
                opts.levels.push((code, Level::Warn));
            }
            "--deny" => {
                let code = args.next().unwrap_or_else(|| usage());
                opts.levels.push((code, Level::Deny));
            }
            "--taint-spec" => {
                opts.taint_spec = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--races" => opts.races = true,
            "--format" => match args.next().unwrap_or_else(|| usage()).as_str() {
                "text" => opts.json = false,
                "json" => opts.json = true,
                other => {
                    eprintln!("unknown format {other:?} (expected text or json)");
                    usage();
                }
            },
            "--trace" => opts.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--profile" => opts.profile = Some(args.next().unwrap_or_else(|| usage())),
            "--telemetry" => opts.telemetry = true,
            "--list" => opts.list = true,
            "--help" | "-h" => usage(),
            other if opts.input.is_empty() && !other.starts_with('-') => {
                opts.input = other.to_owned();
            }
            other => {
                eprintln!("unexpected argument {other:?}");
                usage();
            }
        }
    }
    if opts.input.is_empty() && !opts.list {
        usage();
    }
    if opts.races && !opts.points_to {
        eprintln!("--races needs the backing analysis (drop --no-points-to)");
        usage();
    }
    opts
}

/// Loads the program plus, for `--taint-spec builtin` on a `@benchmark`,
/// the workload's canonical TaintKit spec (switching the taint battery on
/// in the build, since the default recipes omit it).
fn load_program(input: &str, builtin_taint: bool) -> Result<(Program, Option<TaintSpec>), String> {
    if let Some(name) = input.strip_prefix('@') {
        let mut spec = dacapo::by_name(name)
            .ok_or_else(|| format!("unknown benchmark {name:?} (try @pmd, @hsqldb, …)"))?;
        if builtin_taint {
            spec.taint_flows = spec.taint_flows.max(1);
        }
        let program = spec.build();
        let taint = builtin_taint.then(|| spec.taint_spec(&program));
        return Ok((program, taint));
    }
    if builtin_taint {
        return Err("--taint-spec builtin requires a @benchmark input".to_owned());
    }
    let source = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let program = parse_program(&source).map_err(|e| format!("{input}: {e}"))?;
    Ok((program, None))
}

fn main() -> ExitCode {
    let opts = parse_args();
    let tele: TelemetryHandle = (opts.trace.is_some() || opts.profile.is_some() || opts.telemetry)
        .then(|| Arc::new(Telemetry::new()));
    let code = run(&opts, &tele);
    if let Err(e) = flush_telemetry(&tele, &opts) {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    code
}

/// Writes the `--trace` / `--profile` sinks and prints the `--telemetry`
/// summary table (on stderr, per the stream contract).
fn flush_telemetry(tele: &TelemetryHandle, opts: &Options) -> Result<(), String> {
    let Some(t) = tele.as_deref() else {
        return Ok(());
    };
    if let Some(path) = &opts.trace {
        std::fs::write(path, t.chrome_trace()).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = &opts.profile {
        std::fs::write(path, t.profile_json()).map_err(|e| format!("{path}: {e}"))?;
    }
    if opts.telemetry {
        eprint!("{}", t.summary());
    }
    Ok(())
}

fn run(opts: &Options, tele: &TelemetryHandle) -> ExitCode {
    let mut registry = LintRegistry::with_defaults();
    if opts.list {
        for (code, name, description, _) in registry.iter() {
            println!("{code}  {name:<22} {description}");
        }
        return ExitCode::SUCCESS;
    }
    for (code, level) in &opts.levels {
        if !registry.set_level(code, *level) {
            eprintln!("unknown lint code {code:?} (see --list)");
            return ExitCode::from(2);
        }
    }

    let builtin_taint = opts.taint_spec.as_deref() == Some("builtin");
    let parse_span = span_opt(tele, "parse");
    if let Some(s) = &parse_span {
        s.arg("input", &opts.input);
    }
    let (program, builtin_spec) = match load_program(&opts.input, builtin_taint) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    drop(parse_span);
    let taint_spec = match &opts.taint_spec {
        None => None,
        Some(_) if builtin_taint => builtin_spec,
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match TaintSpec::parse(&text, &program) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };

    // Well-formedness first: an ill-formed program would make lint and
    // analysis results meaningless, so report every violation and stop.
    let mut diags = validate_diagnostics(&program);
    let hierarchy = ClassHierarchy::new(&program);
    let mut degraded = false;
    if diags.is_empty() {
        let result = opts.points_to.then(|| {
            let cancel = CancelToken::new();
            let config = SolverConfig {
                budget: opts
                    .timeout
                    .map(Budget::duration)
                    .unwrap_or_else(Budget::unlimited),
                cancel: Some(cancel.clone()),
                // The taint and race clients walk per-context points-to
                // facts.
                record_contexts: taint_spec.is_some() || opts.races,
                parallelism: Parallelism::threads(opts.threads),
                telemetry: tele.clone(),
                ..SolverConfig::default()
            };
            // Watchdog: enforce the deadline even if a worklist step stalls
            // (the solver's own wall-clock check runs between steps).
            let watchdog = opts.timeout.map(|deadline| {
                let disarm = Arc::new(AtomicBool::new(false));
                let disarm2 = Arc::clone(&disarm);
                let handle = std::thread::spawn(move || {
                    let start = std::time::Instant::now();
                    while !disarm2.load(Ordering::Relaxed) {
                        let remaining = deadline.saturating_sub(start.elapsed());
                        if remaining.is_zero() {
                            cancel.cancel();
                            return;
                        }
                        std::thread::sleep(remaining.min(Duration::from_millis(5)));
                    }
                });
                (disarm, handle)
            });
            let result = analyze_flavor(&program, &hierarchy, opts.flavor, &config);
            if let Some((disarm, handle)) = watchdog {
                disarm.store(true, Ordering::Relaxed);
                let _ = handle.join();
            }
            result
        });
        // A partial analysis would make tier-2 lints unsound to trust
        // (missing points-to facts look like clean code): skip them.
        degraded = result.as_ref().is_some_and(|r| r.outcome.is_partial());
        let complete = result.as_ref().filter(|r| r.outcome.is_complete());
        let taint = match (&taint_spec, complete) {
            (Some(spec), Some(r)) => match analyze_taint_traced(&program, spec, r, tele) {
                Ok(t) => Some(t),
                Err(e) => {
                    eprintln!("error: taint analysis failed: {e}");
                    return ExitCode::from(2);
                }
            },
            _ => None,
        };
        let races = match (opts.races, complete) {
            (true, Some(r)) => {
                match rudoop::analysis::races::analyze_races_traced(&program, r, tele) {
                    Ok(t) => Some(t),
                    Err(e) => {
                        eprintln!("error: race analysis failed: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            _ => None,
        };
        let cx = LintContext {
            program: &program,
            hierarchy: &hierarchy,
            points_to: complete,
            taint: taint.as_ref(),
            races: races.as_ref(),
        };
        diags = registry.run_traced(&cx, tele);
    }

    if opts.json {
        print!("{}", render_json(&program, &diags));
    } else {
        print!("{}", render(&program, &diags));
        let errors = diags
            .iter()
            .filter(|d| d.severity == rudoop::Severity::Error)
            .count();
        let warnings = diags
            .iter()
            .filter(|d| d.severity == rudoop::Severity::Warning)
            .count();
        // Summary on stderr: stdout carries only the rendered diagnostics.
        eprintln!(
            "{}: {} error(s), {} warning(s), {} note(s)",
            opts.input,
            errors,
            warnings,
            diags.len() - errors - warnings
        );
    }

    if degraded {
        eprintln!(
            "note: analysis degraded ({}), tier-2 lints skipped — raise --timeout or \
             use a cheaper --analysis",
            opts.flavor.spec_name()
        );
        return ExitCode::from(2);
    }
    if has_errors(&diags) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
