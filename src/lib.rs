//! # rudoop
//!
//! A from-scratch Rust reproduction of *"Introspective Analysis:
//! Context-Sensitivity, Across the Board"* (Smaragdakis, Kastrinis,
//! Balatsouras; PLDI 2014): a Doop-style context-sensitive points-to
//! analysis framework whose headline feature is **introspective
//! context-sensitivity** — run a cheap context-insensitive pass, measure
//! where context would explode, and re-run with context-sensitivity
//! everywhere *except* those program elements.
//!
//! This crate is the facade: it re-exports the workspace members.
//!
//! - [`ir`] — the simplified Jimple-like intermediate language, builder,
//!   parser and printer (`rudoop-ir`),
//! - [`analysis`] — context policies, the solver, introspection metrics,
//!   heuristics, the two-pass driver and precision clients (`rudoop-core`),
//! - [`datalog`] — the semi-naive Datalog engine and the executable model
//!   of the paper's Figures 2–3 (`rudoop-datalog`),
//! - [`workloads`] — deterministic DaCapo-shaped benchmark generators
//!   (`rudoop-workloads`),
//! - [`lints`] — the diagnostics framework and lint suite over the IL,
//!   backed by points-to facts (`rudoop-analyses`), driven by the
//!   `rudoop-lint` binary.
//!
//! # Examples
//!
//! The paper's pitch, end to end: a benchmark where full `2objH` is orders
//! of magnitude costlier than the insensitive analysis, rescued by
//! introspection:
//!
//! ```no_run
//! use rudoop::analysis::driver::{analyze_flavor, analyze_introspective, Flavor};
//! use rudoop::analysis::heuristics::HeuristicA;
//! use rudoop::analysis::solver::SolverConfig;
//! use rudoop::ir::ClassHierarchy;
//! use rudoop::workloads::dacapo;
//!
//! let program = dacapo::hsqldb().build();
//! let hierarchy = ClassHierarchy::new(&program);
//! let config = SolverConfig::default();
//! let full = analyze_flavor(&program, &hierarchy, Flavor::OBJ2H, &config);
//! let intro = analyze_introspective(
//!     &program, &hierarchy, Flavor::OBJ2H, &HeuristicA::default(), &config,
//! );
//! assert!(intro.result.stats.derivations < full.stats.derivations / 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rudoop_analyses as lints;
pub use rudoop_core as analysis;
pub use rudoop_datalog as datalog;
pub use rudoop_ir as ir;
pub use rudoop_workloads as workloads;

pub use rudoop_analyses::{Diagnostic, LintContext, LintRegistry, Severity};

pub use rudoop_core::{
    analyze, analyze_flavor, analyze_introspective, analyze_taint, supervised_taint,
    validate_chrome_trace, Flavor, HeuristicA, HeuristicB, IntrospectionMetrics, Outcome,
    PointsToResult, PrecisionMetrics, SolverConfig, SupervisedTaint, TaintResult, Telemetry,
    TelemetryHandle, TraceCheck,
};
pub use rudoop_ir::{
    parse_program, print_program, ClassHierarchy, Program, ProgramBuilder, TaintSpec,
};

/// Shared plumbing for the `rudoop` / `rudoopd` / `rudoop-lint` binaries.
pub mod cli {
    use rudoop_ir::{parse_program, Program, TaintSpec};
    use rudoop_workloads::dacapo;

    /// Loads a program from a `.rdp` path or an `@benchmark` name.
    ///
    /// For benchmarks, `builtin_taint` switches the workload's taint
    /// battery on (and returns its canonical TaintKit spec) and `races`
    /// switches the concurrency battery on — the default recipes are
    /// sequential and taint-free.
    pub fn load_program(
        input: &str,
        builtin_taint: bool,
        races: bool,
    ) -> Result<(Program, Option<TaintSpec>), String> {
        if let Some(name) = input.strip_prefix('@') {
            let mut spec = dacapo::by_name(name)
                .ok_or_else(|| format!("unknown benchmark {name:?} (try @pmd, @hsqldb, …)"))?;
            if builtin_taint {
                spec.taint_flows = spec.taint_flows.max(1);
            }
            if races {
                spec.concurrency = spec.concurrency.max(2);
            }
            let program = spec.build();
            let taint = builtin_taint.then(|| spec.taint_spec(&program));
            return Ok((program, taint));
        }
        if builtin_taint {
            return Err("--spec builtin requires a @benchmark input".to_owned());
        }
        let source = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
        let program = parse_program(&source).map_err(|e| format!("{input}: {e}"))?;
        Ok((program, None))
    }
}
